package table

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"
)

// This file implements the CSV output connector required by the paper's
// "others" requirement (Section 2): integration with downstream tooling
// via portable formats. We write one CSV file per node type and per edge
// type, the layout used by most property-graph bulk loaders
// (Neo4j-style node/relationship files). Rows are rendered by the
// pooled append encoder in csvenc.go — no per-cell allocation — and the
// bytes match encoding/csv output exactly.

// csvFlushAt is the buffered-row threshold at which the encoder hands
// its batch to the underlying writer.
const csvFlushAt = 48 << 10

// NodeCSVOptions configures WriteNodeCSV.
type NodeCSVOptions struct {
	Comma rune // field separator; 0 means ','
}

// WriteNodeCSV writes a node-type file with header "id,prop1,prop2,…"
// joining the given PTs on the implicit id column. All PTs must have
// the same length. Property columns are emitted in the order given.
func WriteNodeCSV(w io.Writer, typeName string, props []*PropertyTable, opt NodeCSVOptions) error {
	var n int64 = -1
	for _, pt := range props {
		if n == -1 {
			n = pt.Len()
		} else if pt.Len() != n {
			return fmt.Errorf("table: property %s has %d rows, expected %d", pt.Name, pt.Len(), n)
		}
	}
	if n == -1 {
		n = 0
	}
	if err := checkColumnCollisions([]string{"id"}, props); err != nil {
		return err
	}
	comma := opt.Comma
	if comma == 0 {
		comma = ','
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	bp := getEncBuf()
	defer putEncBuf(bp)
	buf := (*bp)[:0]
	buf = appendCSVField(buf, "id", comma)
	for _, pt := range props {
		buf = utf8.AppendRune(buf, comma)
		buf = appendCSVField(buf, shortName(pt.Name), comma)
	}
	buf = append(buf, '\n')
	for id := int64(0); id < n; id++ {
		buf = strconv.AppendInt(buf, id, 10)
		for _, pt := range props {
			buf = utf8.AppendRune(buf, comma)
			buf = pt.appendCSV(buf, id, comma)
		}
		buf = append(buf, '\n')
		if len(buf) >= csvFlushAt {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	*bp = buf
	return bw.Flush()
}

// WriteEdgeCSV writes an edge-type file with header
// "id,tail,head,prop1,…". Edge PTs must have one row per edge.
func WriteEdgeCSV(w io.Writer, et *EdgeTable, props []*PropertyTable, opt NodeCSVOptions) error {
	for _, pt := range props {
		if pt.Len() != et.Len() {
			return fmt.Errorf("table: edge property %s has %d rows, edge table has %d", pt.Name, pt.Len(), et.Len())
		}
	}
	if err := checkColumnCollisions([]string{"id", "tail", "head"}, props); err != nil {
		return err
	}
	comma := opt.Comma
	if comma == 0 {
		comma = ','
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	bp := getEncBuf()
	defer putEncBuf(bp)
	buf := (*bp)[:0]
	buf = appendCSVField(buf, "id", comma)
	buf = utf8.AppendRune(buf, comma)
	buf = appendCSVField(buf, "tail", comma)
	buf = utf8.AppendRune(buf, comma)
	buf = appendCSVField(buf, "head", comma)
	for _, pt := range props {
		buf = utf8.AppendRune(buf, comma)
		buf = appendCSVField(buf, shortName(pt.Name), comma)
	}
	buf = append(buf, '\n')
	for id := int64(0); id < et.Len(); id++ {
		buf = strconv.AppendInt(buf, id, 10)
		buf = utf8.AppendRune(buf, comma)
		buf = strconv.AppendInt(buf, et.Tail[id], 10)
		buf = utf8.AppendRune(buf, comma)
		buf = strconv.AppendInt(buf, et.Head[id], 10)
		for _, pt := range props {
			buf = utf8.AppendRune(buf, comma)
			buf = pt.appendCSV(buf, id, comma)
		}
		buf = append(buf, '\n')
		if len(buf) >= csvFlushAt {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	*bp = buf
	return bw.Flush()
}

// shortName strips the "Type." prefix from a PT name for CSV headers.
func shortName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// checkColumnCollisions rejects property short names that would
// collide with a structural column of the emitted file or with one
// another. Every row-oriented connector (CSV header row, JSONL row
// object) runs this before writing: a colliding name used to silently
// produce an ambiguous header (CSV) or overwrite the structural field
// (JSONL).
func checkColumnCollisions(structural []string, props []*PropertyTable) error {
	owner := make(map[string]string, len(structural)+len(props))
	for _, s := range structural {
		owner[s] = "the structural column"
	}
	for _, pt := range props {
		key := shortName(pt.Name)
		if prev, dup := owner[key]; dup {
			return fmt.Errorf("table: exported column %q of property %s collides with %s", key, pt.Name, prev)
		}
		owner[key] = "property " + pt.Name
	}
	return nil
}

// Dataset is an in-memory generated property graph: the output of the
// DataSynth engine, ready to be exported.
type Dataset struct {
	// NodeProps maps node type -> ordered property tables.
	NodeProps map[string][]*PropertyTable
	// NodeCounts maps node type -> instance count (needed for types
	// with zero properties).
	NodeCounts map[string]int64
	// Edges maps edge type -> edge table.
	Edges map[string]*EdgeTable
	// EdgeProps maps edge type -> ordered property tables.
	EdgeProps map[string][]*PropertyTable
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		NodeProps:  map[string][]*PropertyTable{},
		NodeCounts: map[string]int64{},
		Edges:      map[string]*EdgeTable{},
		EdgeProps:  map[string][]*PropertyTable{},
	}
}

// WriteDir exports the dataset as one CSV per type into dir, creating
// it if necessary. Files are named nodes_<Type>.csv / edges_<Type>.csv.
// Tables are written concurrently and committed atomically; see Export.
func (d *Dataset) WriteDir(dir string) error {
	_, err := d.Export(dir, ExportOptions{Format: FormatCSV})
	return err
}

// Stats summarises the dataset for logging.
func (d *Dataset) Stats() string {
	var nodes, edges int64
	//lint:allow detrange integer sums are order-independent and feed a log line, not output bytes
	for _, n := range d.NodeCounts {
		nodes += n
	}
	//lint:allow detrange integer sums are order-independent and feed a log line, not output bytes
	for _, et := range d.Edges {
		edges += et.Len()
	}
	return fmt.Sprintf("%d node types / %d nodes, %d edge types / %d edges",
		len(d.NodeCounts), nodes, len(d.Edges), edges)
}
