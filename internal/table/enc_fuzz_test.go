package table

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// Fuzz harnesses holding the pooled append encoders against the stdlib
// encoders they claim byte-identity with. The CSV side cross-checks
// PropertyTable.appendCSV / appendCSVField against encoding/csv over
// the legacy fmt-rendered cells; the JSON side cross-checks
// appendJSONFloat / appendJSONString against encoding/json — including
// its error behaviour on NaN and ±Inf, which have no JSON encoding.

// FuzzFloatEncoding: float cells must render identically through both
// pipelines for every representable float64 — the seeds pin the
// special values the paper's datasets actually produce (NaN, ±Inf, −0,
// subnormals, values at the 'e'/'f' format boundary).
func FuzzFloatEncoding(f *testing.F) {
	f.Add(0.0)
	f.Add(math.Copysign(0, -1)) // -0
	f.Add(math.NaN())
	f.Add(math.Inf(1))
	f.Add(math.Inf(-1))
	f.Add(5e-324) // smallest subnormal
	f.Add(2.2250738585072009e-308)
	f.Add(math.MaxFloat64)
	f.Add(1e-6)
	f.Add(9.999999e-7) // just below the 'e' format boundary
	f.Add(1e21)
	f.Add(1.0 / 3.0)
	f.Add(-2.5e-9)
	f.Fuzz(func(t *testing.T, v float64) {
		pt := NewPropertyTable("T.x", KindFloat, 1)
		pt.SetFloat(0, v)

		// CSV: the append encoder vs encoding/csv over the legacy
		// fmt-based rendering (PropertyTable.Format).
		got := string(pt.appendCSV(nil, 0, ','))
		var ref bytes.Buffer
		w := csv.NewWriter(&ref)
		if err := w.Write([]string{pt.Format(0)}); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		want := strings.TrimSuffix(ref.String(), "\n")
		if got != want {
			t.Errorf("CSV rendering of %v: %q, encoding/csv %q", v, got, want)
		}

		// JSON: the append encoder vs encoding/json, including the
		// unsupported-value error on NaN/±Inf.
		gotJSON, gotErr := appendJSONFloat(nil, v)
		wantJSON, wantErr := json.Marshal(v)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("JSON error mismatch for %v: append %v, stdlib %v", v, gotErr, wantErr)
		}
		if gotErr == nil && !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("JSON rendering of %v: %q, encoding/json %q", v, gotJSON, wantJSON)
		}
	})
}

// FuzzCSVFieldEncoding: string cells must quote and escape exactly as
// encoding/csv at every supported separator.
func FuzzCSVFieldEncoding(f *testing.F) {
	f.Add("plain", uint8(0))
	f.Add("comma,inside", uint8(0))
	f.Add(`quote"inside`, uint8(0))
	f.Add("multi\nline\r\n", uint8(1))
	f.Add(" leading space", uint8(2))
	f.Add(`\.`, uint8(0))
	f.Add("tab\tsep", uint8(3))
	f.Add("ünïcødé ✓", uint8(4))
	f.Fuzz(func(t *testing.T, s string, commaSel uint8) {
		commas := []rune{',', ';', '\t', '|', ' '}
		comma := commas[int(commaSel)%len(commas)]
		got := string(appendCSVField(nil, s, comma))
		var ref bytes.Buffer
		w := csv.NewWriter(&ref)
		w.Comma = comma
		if err := w.Write([]string{s}); err != nil {
			// encoding/csv rejects fields only on invalid comma/field
			// runes; our encoder has no error path, so surface the case.
			t.Skipf("encoding/csv rejected %q: %v", s, err)
		}
		w.Flush()
		want := strings.TrimSuffix(ref.String(), "\n")
		if got != want {
			t.Errorf("CSV field %q (comma %q): %q, encoding/csv %q", s, comma, got, want)
		}
	})
}

// FuzzJSONStringEncoding: string cells must escape exactly as
// encoding/json with default HTML escaping — control bytes, HTML
// metacharacters, invalid UTF-8, and the JS line separators.
func FuzzJSONStringEncoding(f *testing.F) {
	f.Add("plain")
	f.Add(`quote " backslash \`)
	f.Add("<script>&amp;</script>")
	f.Add("ctrl \x00\x01\x1f\t\n\r")
	f.Add("invalid \xff\xfe utf8 \xc3")
	f.Add("line seps   and  ")
	f.Add("\x7f")
	f.Fuzz(func(t *testing.T, s string) {
		got := appendJSONString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("JSON string %q: %q, encoding/json %q", s, got, want)
		}
	})
}
