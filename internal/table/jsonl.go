package table

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSON-lines connectors: one JSON object per node/edge, the streaming
// format document stores and data pipelines ingest directly. Together
// with the CSV writers this covers the paper's "integrability"
// requirement (connectors for production-level technologies).

// WriteNodeJSONL writes one object per node: {"id":…, "<prop>":…, …}.
func WriteNodeJSONL(w io.Writer, typeName string, props []*PropertyTable) error {
	var n int64 = -1
	for _, pt := range props {
		if n == -1 {
			n = pt.Len()
		} else if pt.Len() != n {
			return fmt.Errorf("table: property %s has %d rows, expected %d", pt.Name, pt.Len(), n)
		}
	}
	if n == -1 {
		n = 0
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	row := make(map[string]any, len(props)+2)
	for id := int64(0); id < n; id++ {
		clear(row)
		row["id"] = id
		row["label"] = typeName
		for _, pt := range props {
			row[shortName(pt.Name)] = jsonValue(pt, id)
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEdgeJSONL writes one object per edge:
// {"id":…, "label":…, "tail":…, "head":…, "<prop>":…}.
func WriteEdgeJSONL(w io.Writer, et *EdgeTable, props []*PropertyTable) error {
	for _, pt := range props {
		if pt.Len() != et.Len() {
			return fmt.Errorf("table: edge property %s has %d rows, edge table has %d", pt.Name, pt.Len(), et.Len())
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	row := make(map[string]any, len(props)+4)
	for id := int64(0); id < et.Len(); id++ {
		clear(row)
		row["id"] = id
		row["label"] = et.Name
		row["tail"] = et.Tail[id]
		row["head"] = et.Head[id]
		for _, pt := range props {
			row[shortName(pt.Name)] = jsonValue(pt, id)
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonValue boxes a PT cell for JSON encoding; dates render as their
// ISO string.
func jsonValue(pt *PropertyTable, id int64) any {
	switch pt.Kind {
	case KindString:
		return pt.String(id)
	case KindFloat:
		return pt.Float(id)
	case KindDate:
		return FormatDate(pt.Int(id))
	default:
		return pt.Int(id)
	}
}

// WriteDirJSONL exports the dataset as nodes_<Type>.jsonl and
// edges_<Type>.jsonl files. Tables are written concurrently and
// committed atomically; see Export.
func (d *Dataset) WriteDirJSONL(dir string) error {
	_, err := d.Export(dir, ExportOptions{Format: FormatJSONL})
	return err
}
