package table

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// JSON-lines connectors: one JSON object per node/edge, the streaming
// format document stores and data pipelines ingest directly. Together
// with the CSV writers this covers the paper's "integrability"
// requirement (connectors for production-level technologies).
//
// Rows are rendered by the pooled append encoder in jsonenc.go —
// byte-identical to the previous per-row map[string]any +
// encoding/json path (keys sorted lexicographically, HTML-escaped
// strings, stdlib float formatting) at CSV-class throughput. A
// property whose short name would collide with a structural key
// ("id", "label", "tail", "head") or with another property used to
// silently overwrite that field in the emitted object; it is now a
// hard error.

// jsonlField kinds: the structural columns every row carries, plus
// property columns.
const (
	jsonlFieldID = iota
	jsonlFieldLabel
	jsonlFieldTail
	jsonlFieldHead
	jsonlFieldProp
)

// jsonlField is one key of the emitted row object.
type jsonlField struct {
	name string // unescaped key; ordering follows encoding/json's map-key sort
	key  []byte // pre-rendered `"name":`
	kind int
	pt   *PropertyTable
}

// jsonlPlan orders the row's fields exactly as encoding/json orders
// map keys (lexicographic on the raw key) and rejects property short
// names that would overwrite a structural field or one another
// (checkColumnCollisions, shared with the CSV writers).
func jsonlPlan(structural []jsonlField, props []*PropertyTable) ([]jsonlField, error) {
	names := make([]string, len(structural))
	for i, f := range structural {
		names[i] = f.name
	}
	if err := checkColumnCollisions(names, props); err != nil {
		return nil, err
	}
	fields := append([]jsonlField(nil), structural...)
	for _, pt := range props {
		fields = append(fields, jsonlField{name: shortName(pt.Name), kind: jsonlFieldProp, pt: pt})
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
	for i := range fields {
		fields[i].key = append(appendJSONString(nil, fields[i].name), ':')
	}
	return fields, nil
}

// WriteNodeJSONL writes one object per node: {"id":…, "label":…,
// "<prop>":…} with keys in sorted order. A property short name equal
// to "id" or "label" (or duplicated across properties) is an error.
func WriteNodeJSONL(w io.Writer, typeName string, props []*PropertyTable) error {
	var n int64 = -1
	for _, pt := range props {
		if n == -1 {
			n = pt.Len()
		} else if pt.Len() != n {
			return fmt.Errorf("table: property %s has %d rows, expected %d", pt.Name, pt.Len(), n)
		}
	}
	if n == -1 {
		n = 0
	}
	fields, err := jsonlPlan([]jsonlField{
		{name: "id", kind: jsonlFieldID},
		{name: "label", kind: jsonlFieldLabel},
	}, props)
	if err != nil {
		return err
	}
	return writeJSONLRows(w, fields, n, appendJSONString(nil, typeName), nil)
}

// WriteEdgeJSONL writes one object per edge: {"head":…, "id":…,
// "label":…, "tail":…, "<prop>":…} with keys in sorted order. A
// property short name equal to a structural key ("id", "label",
// "tail", "head") or duplicated across properties is an error.
func WriteEdgeJSONL(w io.Writer, et *EdgeTable, props []*PropertyTable) error {
	for _, pt := range props {
		if pt.Len() != et.Len() {
			return fmt.Errorf("table: edge property %s has %d rows, edge table has %d", pt.Name, pt.Len(), et.Len())
		}
	}
	fields, err := jsonlPlan([]jsonlField{
		{name: "id", kind: jsonlFieldID},
		{name: "label", kind: jsonlFieldLabel},
		{name: "tail", kind: jsonlFieldTail},
		{name: "head", kind: jsonlFieldHead},
	}, props)
	if err != nil {
		return err
	}
	return writeJSONLRows(w, fields, et.Len(), appendJSONString(nil, et.Name), et)
}

// writeJSONLRows renders n row objects through the pooled append
// encoder. label is the pre-escaped label literal; et supplies the
// structural tail/head columns for edge rows (nil for node rows).
func writeJSONLRows(w io.Writer, fields []jsonlField, n int64, label []byte, et *EdgeTable) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bp := getEncBuf()
	defer putEncBuf(bp)
	buf := (*bp)[:0]
	var err error
	for id := int64(0); id < n; id++ {
		buf = append(buf, '{')
		for i := range fields {
			f := &fields[i]
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, f.key...)
			switch f.kind {
			case jsonlFieldID:
				buf = strconv.AppendInt(buf, id, 10)
			case jsonlFieldLabel:
				buf = append(buf, label...)
			case jsonlFieldTail:
				buf = strconv.AppendInt(buf, et.Tail[id], 10)
			case jsonlFieldHead:
				buf = strconv.AppendInt(buf, et.Head[id], 10)
			default:
				if buf, err = f.pt.appendJSON(buf, id); err != nil {
					return err
				}
			}
		}
		buf = append(buf, '}', '\n')
		if len(buf) >= csvFlushAt {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	*bp = buf
	return bw.Flush()
}

// WriteDirJSONL exports the dataset as nodes_<Type>.jsonl and
// edges_<Type>.jsonl files. Tables are written concurrently and
// committed atomically; see Export.
func (d *Dataset) WriteDirJSONL(dir string) error {
	_, err := d.Export(dir, ExportOptions{Format: FormatJSONL})
	return err
}
