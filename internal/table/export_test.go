package table

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"errors"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
)

// raggedDataset returns a dataset whose edge property row count does
// not match its edge table — WriteEdge* must reject it, so any export
// of the dataset fails partway through the job list.
func raggedDataset() *Dataset {
	d := roundTripDataset()
	bad := NewPropertyTable("follows.bogus", KindInt, 99)
	d.EdgeProps["follows"] = append(d.EdgeProps["follows"], bad)
	return d
}

// TestExportAtomicityPartialWrite is the regression test for the old
// WriteDir behavior, which left nodes_*.csv behind when a later edge
// table failed. The export must stage everything in temp files and
// leave the directory without a single file — temp or final — on error.
func TestExportAtomicityPartialWrite(t *testing.T) {
	for _, format := range []Format{FormatCSV, FormatJSONL, FormatColumnar} {
		for _, workers := range []int{1, 4} {
			d := raggedDataset()
			dir := filepath.Join(t.TempDir(), "out")
			_, err := d.Export(dir, ExportOptions{Format: format, Workers: workers})
			if err == nil {
				t.Fatalf("%v workers=%d: ragged dataset exported without error", format, workers)
			}
			if !strings.Contains(err.Error(), "bogus") {
				t.Errorf("%v workers=%d: error %v does not name the bad column", format, workers, err)
			}
			entries, dirErr := os.ReadDir(dir)
			if os.IsNotExist(dirErr) {
				continue // directory we created was fully rolled back
			}
			if dirErr != nil {
				t.Fatal(dirErr)
			}
			for _, ent := range entries {
				t.Errorf("%v workers=%d: partial export left %s behind", format, workers, ent.Name())
			}
		}
	}
}

// TestExportCtxPreCanceled: a canceled context aborts the export before
// the directory is touched — no directory, no temps, no files.
func TestExportCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := roundTripDataset()
	dir := filepath.Join(t.TempDir(), "out")
	if _, err := d.ExportCtx(ctx, dir, ExportOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExportCtx with canceled context = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("canceled export still created %s (stat err %v)", dir, err)
	}
}

// cancelAfterCtx reports context.Canceled from Err() once the first
// `left` checks have passed — a deterministic stand-in for a deadline
// that expires at an exact point of the export's check sequence.
type cancelAfterCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *cancelAfterCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left > 0 {
		c.left--
		return nil
	}
	return context.Canceled
}

// TestExportCtxCancelMidRun: cancellation while file jobs are running —
// or after the last file but before the commit — rolls the staged
// export back like any other failure: no directory, no temps, and
// crucially no committed subset of files.
func TestExportCtxCancelMidRun(t *testing.T) {
	k := len(roundTripDataset().exportJobs(FormatCSV))
	if k < 2 {
		t.Fatalf("fixture exports %d files, need at least 2", k)
	}
	// The serial check sequence is: 1 entry check, k per-job checks, 1
	// commit barrier. left=2 cancels between job 0 and job 1 (job 0's
	// temp already on disk); left=1+k cancels at the commit barrier with
	// every temp written.
	for _, left := range []int{2, 1 + k} {
		ctx := &cancelAfterCtx{Context: context.Background(), left: left}
		d := roundTripDataset()
		dir := filepath.Join(t.TempDir(), "out")
		_, err := d.ExportCtx(ctx, dir, ExportOptions{Workers: 1})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("left=%d: err = %v, want context.Canceled", left, err)
		}
		if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
			entries, _ := os.ReadDir(dir)
			for _, ent := range entries {
				t.Errorf("left=%d: canceled export left %s", left, ent.Name())
			}
		}
	}
}

// TestExportFailureKeepsForeignFiles: rolling back must not delete a
// pre-existing directory or unrelated files in it.
func TestExportFailureKeepsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "keep.txt")
	if err := os.WriteFile(keep, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := raggedDataset().Export(dir, ExportOptions{}); err == nil {
		t.Fatal("ragged dataset exported without error")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("pre-existing file removed by failed export: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after failed export, want only keep.txt", len(entries))
	}
}

// hashExportDir hashes every file of one export configuration.
func hashExportDir(t *testing.T, d *Dataset, format Format, workers int) map[string]string {
	t.Helper()
	dir := t.TempDir()
	stats, err := d.Export(dir, ExportOptions{Format: format, Workers: workers})
	if err != nil {
		t.Fatalf("%v workers=%d: %v", format, workers, err)
	}
	hashes := map[string]string{}
	for _, st := range stats {
		raw, err := os.ReadFile(filepath.Join(dir, st.Name))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(raw)) != st.Bytes {
			t.Errorf("%s: FileStat.Bytes = %d, file is %d", st.Name, st.Bytes, len(raw))
		}
		sum := sha256.Sum256(raw)
		hashes[st.Name] = hex.EncodeToString(sum[:])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(stats) {
		t.Fatalf("%v workers=%d: %d files on disk, %d reported", format, workers, len(entries), len(stats))
	}
	return hashes
}

// TestExportConcurrentDeterminism: file bytes are identical at every
// export worker count, for every format.
func TestExportConcurrentDeterminism(t *testing.T) {
	d := roundTripDataset()
	for _, format := range []Format{FormatCSV, FormatJSONL, FormatColumnar} {
		ref := hashExportDir(t, d, format, 1)
		if len(ref) != 2 {
			t.Fatalf("%v: exported %d files, want 2", format, len(ref))
		}
		for _, workers := range []int{0, 2, 4, 8} {
			got := hashExportDir(t, d, format, workers)
			for name, h := range ref {
				if got[name] != h {
					t.Errorf("%v workers=%d: %s hash %s, want %s", format, workers, name, got[name], h)
				}
			}
		}
	}
}

// TestExportOverwrites: re-exporting into the same directory replaces
// the files (rename-over semantics), the pattern benchmarks rely on.
func TestExportOverwrites(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	if _, err := d.Export(dir, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	d.NodeProps["User"][0].SetString(0, "renamed")
	if _, err := d.Export(dir, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "nodes_User.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("renamed")) {
		t.Error("second export did not replace the file")
	}
}

// TestExportRenamesEdgeTableToDatasetKey: the dataset key is the edge
// type; a table still carrying its generator-internal Name must export
// under the key in every format — including formats that embed the
// name in the payload — so a columnar round trip keys the edges the
// same way the dataset did.
func TestExportRenamesEdgeTableToDatasetKey(t *testing.T) {
	d := NewDataset()
	d.NodeCounts["N"] = 3
	et := NewEdgeTable("lfr-internal", 2)
	et.Add(0, 1)
	et.Add(1, 2)
	d.Edges["knows"] = et

	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenColumnar(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edges["knows"] == nil {
		t.Fatalf("round trip lost the dataset key: edges keyed %v", mapKeys(got.Edges))
	}
	if got.Edges["knows"].Name != "knows" {
		t.Errorf("round-tripped table Name = %q, want dataset key", got.Edges["knows"].Name)
	}
	if et.Name != "lfr-internal" {
		t.Errorf("export mutated the caller's table Name to %q", et.Name)
	}

	jsonlDir := t.TempDir()
	if err := d.WriteDirJSONL(jsonlDir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(jsonlDir, "edges_knows.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"label":"knows"`)) {
		t.Errorf("JSONL label does not use the dataset key:\n%s", raw)
	}
}

func mapKeys(m map[string]*EdgeTable) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// TestExportCommitFailureKeepsCommittedFiles: when a rename in the
// commit phase fails (here: the target name is occupied by a
// directory), files committed before it must survive — deleting them
// could destroy the only copy when re-exporting over an existing
// dataset — and the remaining temps must be cleaned up.
func TestExportCommitFailureKeepsCommittedFiles(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	// Jobs commit in sorted-nodes-then-edges order, so nodes_User.csv
	// renames first and edges_follows.csv second; occupy the second
	// target with a directory to fail its rename.
	if err := os.Mkdir(filepath.Join(dir, "edges_follows.csv"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := d.Export(dir, ExportOptions{Format: FormatCSV})
	if err == nil {
		t.Fatal("rename over a directory did not fail")
	}
	if !strings.Contains(err.Error(), "committing edges_follows.csv") {
		t.Errorf("error %v does not name the failed commit", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "nodes_User.csv")); err != nil {
		t.Errorf("committed file was rolled back: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", ent.Name())
		}
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{"csv": FormatCSV, "jsonl": FormatJSONL, "columnar": FormatColumnar, "dsc": FormatColumnar} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Error("unknown format should fail")
	}
	if FormatCSV.Ext() != ".csv" || FormatJSONL.Ext() != ".jsonl" || FormatColumnar.Ext() != ".dsc" {
		t.Error("extensions wrong")
	}
	if FormatColumnar.String() != "columnar" {
		t.Errorf("String() = %s", FormatColumnar)
	}
}

// TestFileNamingHelpers pins the naming contract the service relies on
// to stream a committed export directory without re-encoding: the
// helper names must be exactly what the export pipeline writes.
func TestFileNamingHelpers(t *testing.T) {
	if got := NodeFileName("Person", FormatCSV); got != "nodes_Person.csv" {
		t.Errorf("NodeFileName = %s", got)
	}
	if got := EdgeFileName("knows", FormatColumnar); got != "edges_knows.dsc" {
		t.Errorf("EdgeFileName = %s", got)
	}
	d := NewDataset()
	d.NodeCounts["Person"] = 1
	d.NodeProps["Person"] = []*PropertyTable{NewPropertyTable("Person.age", KindInt, 1)}
	et := NewEdgeTable("knows", 1)
	et.Add(0, 0)
	d.Edges["knows"] = et
	for _, f := range []Format{FormatCSV, FormatJSONL, FormatColumnar} {
		jobs := d.exportJobs(f)
		got := make([]string, len(jobs))
		for i, j := range jobs {
			got[i] = j.file
		}
		want := []string{NodeFileName("Person", f), EdgeFileName("knows", f)}
		if !slices.Equal(got, want) {
			t.Errorf("%s: exportJobs files %v, helpers say %v", f, got, want)
		}
		if ct := f.ContentType(); ct == "" {
			t.Errorf("%s has no content type", f)
		}
	}
}

// TestCSVEncoderMatchesStdlib cross-checks the pooled append encoder
// against encoding/csv field by field: the byte-identity contract that
// lets the encoder replace the stdlib writer without changing a single
// exported file.
func TestCSVEncoderMatchesStdlib(t *testing.T) {
	fields := []string{
		"", "plain", "comma,inside", `quote"inside`, "new\nline", "cr\rreturn",
		" leadingspace", "trailing ", "\ttab", `\.`, "ünïcødé ✓", `""`,
		"a,b\"c\nd", "0", "-123", "1.5e-300", " nbsp",
	}
	for _, comma := range []rune{',', ';', '|'} {
		for _, f := range fields {
			var want bytes.Buffer
			cw := csv.NewWriter(&want)
			cw.Comma = comma
			if err := cw.Write([]string{f, f}); err != nil {
				t.Fatal(err)
			}
			cw.Flush()
			got := appendCSVField(nil, f, comma)
			got = append(got, string(comma)...)
			got = appendCSVField(got, f, comma)
			got = append(got, '\n')
			if string(got) != want.String() {
				t.Errorf("comma %q field %q: encoder %q, stdlib %q", comma, f, got, want.String())
			}
		}
	}
}

// TestCSVNumericAppendMatchesFormat pins the numeric/date append paths
// to the historical fmt-based rendering.
func TestCSVNumericAppendMatchesFormat(t *testing.T) {
	floats := []float64{0, -1.5, 1.0 / 3.0, math.MaxFloat64, 5e-324, math.Inf(1), math.Inf(-1)}
	pt := NewPropertyTable("T.f", KindFloat, int64(len(floats)))
	for i, f := range floats {
		pt.SetFloat(int64(i), f)
	}
	for i := range floats {
		got := string(pt.appendCSV(nil, int64(i), ','))
		if want := pt.Format(int64(i)); got != want {
			t.Errorf("float row %d: append %q, Format %q", i, got, want)
		}
	}
	dates := NewPropertyTable("T.d", KindDate, 3)
	dates.SetInt(0, 0)
	dates.SetInt(1, MustParseDate("2017-04-03"))
	dates.SetInt(2, -400)
	for i := int64(0); i < 3; i++ {
		got := string(dates.appendCSV(nil, i, ','))
		if want := dates.Format(i); got != want {
			t.Errorf("date row %d: append %q, Format %q", i, got, want)
		}
	}
}
