package table

import (
	"fmt"
	"time"
)

// Dates are stored as int64 days since the Unix epoch. Keeping them
// numeric lets date properties participate in arithmetic constraints
// such as the running example's "knows.creationDate is greater than the
// creationDate of the two connected Persons".

// dateLayout is the on-disk/DSL date format.
const dateLayout = "2006-01-02"

// ParseDate converts "YYYY-MM-DD" to days since the Unix epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse(dateLayout, s)
	if err != nil {
		return 0, fmt.Errorf("table: bad date %q: %w", s, err)
	}
	return t.Unix() / 86400, nil
}

// MustParseDate is ParseDate that panics on error; for literals.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate converts days since the Unix epoch back to "YYYY-MM-DD".
func FormatDate(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format(dateLayout)
}
