package table

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"datasynth/internal/faultfs"
)

// exportDirEntries lists what an export left behind ("" if the
// directory itself was rolled back).
func exportDirEntries(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(des))
	for i, de := range des {
		names[i] = de.Name()
	}
	return names
}

// TestExportCreateFaultLeavesNoPartialDir: a failed Create mid-export
// aborts the whole set and rolls the directory back, same as an
// encoding error.
func TestExportCreateFaultLeavesNoPartialDir(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := roundTripDataset()
		dir := filepath.Join(t.TempDir(), "out")
		fsys := faultfs.NewInject(1, &faultfs.Rule{Ops: faultfs.OpCreate, Nth: 2})
		_, err := d.ExportCtx(t.Context(), dir, ExportOptions{Workers: workers, FS: fsys})
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("workers=%d: export = %v, want injected fault", workers, err)
		}
		if left := exportDirEntries(t, dir); len(left) != 0 {
			t.Errorf("workers=%d: failed export left %v behind", workers, left)
		}
	}
}

// TestExportTornWriteFails: a write torn mid-file (half the buffer
// reaches disk) must fail the export, not commit a truncated table.
func TestExportTornWriteFails(t *testing.T) {
	d := roundTripDataset()
	dir := filepath.Join(t.TempDir(), "out")
	fsys := faultfs.NewInject(1, &faultfs.Rule{Ops: faultfs.OpWrite, Nth: 1, Short: true})
	_, err := d.ExportCtx(t.Context(), dir, ExportOptions{Workers: 1, FS: fsys})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("export = %v, want injected fault", err)
	}
	if left := exportDirEntries(t, dir); len(left) != 0 {
		t.Errorf("torn export left %v behind", left)
	}
}

// TestExportCommitRenameFault: a rename failing during the commit
// phase drops the remaining temps (no half-staged debris) while files
// renamed before the fault stay — they may be the only copy when
// re-exporting over an existing dataset.
func TestExportCommitRenameFault(t *testing.T) {
	d := roundTripDataset()
	dir := filepath.Join(t.TempDir(), "out")
	fsys := faultfs.NewInject(1, &faultfs.Rule{Ops: faultfs.OpRename, Nth: 2})
	_, err := d.ExportCtx(t.Context(), dir, ExportOptions{Workers: 1, FS: fsys})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("export = %v, want injected fault", err)
	}
	committed := 0
	for _, name := range exportDirEntries(t, dir) {
		if filepath.Ext(name) == ".tmp" {
			t.Errorf("commit fault left temp file %s", name)
			continue
		}
		committed++
	}
	if committed != 1 {
		t.Errorf("want exactly the 1 pre-fault committed file to survive, found %d", committed)
	}
}

// TestExportCleanSameBytesThroughInjector: an injector with no firing
// rules must be invisible — same files, same bytes as the plain path
// (the faultfs indirection cannot perturb determinism).
func TestExportCleanSameBytesThroughInjector(t *testing.T) {
	d := roundTripDataset()
	plainDir := filepath.Join(t.TempDir(), "plain")
	injDir := filepath.Join(t.TempDir(), "inj")
	if _, err := d.Export(plainDir, ExportOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Export(injDir, ExportOptions{Workers: 2, FS: faultfs.NewInject(9)}); err != nil {
		t.Fatal(err)
	}
	plain := exportDirEntries(t, plainDir)
	inj := exportDirEntries(t, injDir)
	if len(plain) == 0 || len(plain) != len(inj) {
		t.Fatalf("file sets differ: %v vs %v", plain, inj)
	}
	for i := range plain {
		if plain[i] != inj[i] {
			t.Fatalf("file sets differ: %v vs %v", plain, inj)
		}
		a, err := os.ReadFile(filepath.Join(plainDir, plain[i]))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(injDir, inj[i]))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between plain and injected export", plain[i])
		}
	}
}
