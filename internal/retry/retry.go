// Package retry implements context-aware, capped, jittered
// exponential backoff for transient failures — the service wraps its
// cache-store commits in it so a hiccuping disk costs milliseconds,
// not a failed job. The jitter stream is seeded (splitmix64), so a
// fixed policy replays the same delay sequence: retry behaviour in
// tests is as deterministic as everything else in this codebase.
package retry

import (
	"context"
	"errors"
	"time"
)

// Policy shapes one retry loop.
type Policy struct {
	// Attempts is the total number of tries, first call included.
	// Values below 1 mean 1 (no retry).
	Attempts int
	// BaseDelay is the pause before the first retry; each subsequent
	// pause multiplies by Multiplier up to MaxDelay. 0 retries
	// immediately.
	BaseDelay time.Duration
	// MaxDelay caps a single pause. 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized (0 to 1): the
	// pause becomes d * (1 ± Jitter), drawn from the seeded stream.
	Jitter float64
	// Seed keys the jitter stream; the same seed replays the same
	// delays.
	Seed uint64
	// Sleep, if non-nil, replaces the context-aware sleep — the test
	// hook for capturing or skipping real delays.
	Sleep func(ctx context.Context, d time.Duration) error
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Do stops retrying immediately and
// returns it (unwrapped from the marker, still matching errors.Is/As
// on the cause).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// Do calls fn until it succeeds, the attempt budget is spent, ctx is
// done, or fn returns a Permanent error. It returns nil on success and
// otherwise the last error fn produced (the context error when ctx
// expired before the first attempt). fn receives the 0-based attempt
// number. Context errors from fn itself are treated as permanent: a
// canceled job must not burn the backoff schedule discovering it is
// canceled.
func Do(ctx context.Context, p Policy, fn func(attempt int) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	rng := p.Seed ^ 0x9e3779b97f4a7c15
	delay := p.BaseDelay
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := fn(attempt)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if attempt == attempts-1 {
			break
		}
		d := delay
		if p.MaxDelay > 0 && d > p.MaxDelay {
			d = p.MaxDelay
		}
		if p.Jitter > 0 && d > 0 {
			rng = splitmix64(&rng)
			// u in [0,1): spread the pause across d*(1-J) .. d*(1+J).
			u := float64(rng>>11) / (1 << 53)
			d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*u))
		}
		if d > 0 {
			if err := sleep(ctx, d); err != nil {
				return lastErr
			}
		}
		delay = time.Duration(float64(delay) * mult)
	}
	return lastErr
}

// sleepCtx pauses for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 advances the jitter stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
