package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// noSleep swallows delays so tests never wait on the clock.
func noSleep(ctx context.Context, d time.Duration) error { return nil }

func TestSucceedsAfterTransients(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Sleep: noSleep}, func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestAttemptBudgetExhausted(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3, Sleep: noSleep}, func(int) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v, want errBoom", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestZeroAttemptsMeansOne(t *testing.T) {
	calls := 0
	Do(context.Background(), Policy{Sleep: noSleep}, func(int) error {
		calls++
		return errBoom
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Sleep: noSleep}, func(int) error {
		calls++
		return Permanent(errBoom)
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v, want the unwrapped cause", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (Permanent must not retry)", calls)
	}
}

func TestContextErrorsFromFnNotRetried(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Sleep: noSleep}, func(int) error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (a canceled job must not burn the schedule)", calls)
	}
}

func TestCanceledContextBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{Attempts: 5, Sleep: noSleep}, func(int) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times, want 0", calls)
	}
}

func TestCancellationDuringSleepReturnsLastError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := Do(ctx, Policy{
		Attempts:  5,
		BaseDelay: time.Hour,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}, func(int) error {
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v, want the last fn error", err)
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	var delays []time.Duration
	Do(context.Background(), Policy{
		Attempts:  6,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  45 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}, func(int) error { return errBoom })
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		45 * time.Millisecond, 45 * time.Millisecond,
	}
	if len(delays) != len(want) {
		t.Fatalf("got %d delays (%v), want %d", len(delays), delays, len(want))
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (all: %v)", i, delays[i], want[i], delays)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	capture := func(seed uint64) []time.Duration {
		var delays []time.Duration
		Do(context.Background(), Policy{
			Attempts:  5,
			BaseDelay: 100 * time.Millisecond,
			Jitter:    0.5,
			Seed:      seed,
			Sleep: func(ctx context.Context, d time.Duration) error {
				delays = append(delays, d)
				return nil
			},
		}, func(int) error { return errBoom })
		return delays
	}
	a, b := capture(7), capture(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different delays: %v vs %v", a, b)
		}
	}
	// Jittered delays stay within d*(1±J) of the unjittered schedule.
	base := 100 * time.Millisecond
	for i, d := range a {
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if d < lo || d > hi {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, d, lo, hi)
		}
		base *= 2
	}
	c := capture(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}
