package cascade

import (
	"testing"
	"testing/quick"
)

func TestForestInvariants(t *testing.T) {
	g := NewGenerator(7)
	f, err := g.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 5000 {
		t.Fatalf("N = %d", f.N())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) == 0 {
		t.Fatal("no roots")
	}
	var sum int64
	for _, s := range f.TreeSizes() {
		if s < 1 {
			t.Fatalf("tree size %d", s)
		}
		sum += s
	}
	if sum != 5000 {
		t.Fatalf("tree sizes sum to %d", sum)
	}
}

func TestForestDeterministic(t *testing.T) {
	a, err := NewGenerator(3).Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(3).Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 1000; v++ {
		if a.Parent[v] != b.Parent[v] {
			t.Fatalf("parent of %d differs", v)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1).Run(0); err == nil {
		t.Error("n=0 should fail")
	}
	g := NewGenerator(1)
	g.TreeSizeMin = 0
	if _, err := g.Run(10); err == nil {
		t.Error("TreeSizeMin=0 should fail")
	}
	g2 := NewGenerator(1)
	g2.PreferRecent = 2
	if _, err := g2.Run(10); err == nil {
		t.Error("PreferRecent>1 should fail")
	}
}

func TestEdgeTableShape(t *testing.T) {
	f, err := NewGenerator(9).Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	et := f.EdgeTable("replyOf")
	// One edge per non-root.
	want := f.N() - int64(len(f.Roots))
	if et.Len() != want {
		t.Fatalf("edges = %d, want %d", et.Len(), want)
	}
	// Child (tail) must be greater than parent (head): acyclic.
	for i := int64(0); i < et.Len(); i++ {
		if et.Tail[i] <= et.Head[i] {
			t.Fatalf("edge %d not child->parent ordered", i)
		}
	}
}

func TestPreferRecentShapesDepth(t *testing.T) {
	// PreferRecent = 1 yields pure paths (depth = size-1 per tree);
	// PreferRecent = 0 yields bushier, shallower random recursive trees.
	deep := NewGenerator(5)
	deep.PreferRecent = 1
	deep.TreeSizeMin, deep.TreeSizeMax = 50, 50
	fd, err := deep.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	shallow := NewGenerator(5)
	shallow.PreferRecent = 0
	shallow.TreeSizeMin, shallow.TreeSizeMax = 50, 50
	fs, err := shallow.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if fd.MaxDepth() != 49 {
		t.Errorf("pure-path max depth = %d, want 49", fd.MaxDepth())
	}
	if fs.MaxDepth() >= fd.MaxDepth() {
		t.Errorf("random trees (depth %d) should be shallower than paths (depth %d)", fs.MaxDepth(), fd.MaxDepth())
	}
}

func TestPropagateInt64DatesIncrease(t *testing.T) {
	f, err := NewGenerator(11).Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	dates, err := f.ReplyDates(15000, 16000, 7, 21)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < f.N(); v++ {
		p := f.Parent[v]
		if p == -1 {
			if dates[v] < 15000 || dates[v] > 16000 {
				t.Fatalf("root %d date %d outside range", v, dates[v])
			}
			continue
		}
		if dates[v] <= dates[p] {
			t.Fatalf("reply %d date %d not after parent date %d", v, dates[v], dates[p])
		}
		if dates[v] > dates[p]+7 {
			t.Fatalf("reply %d lag %d exceeds 7", v, dates[v]-dates[p])
		}
	}
}

func TestReplyDatesValidation(t *testing.T) {
	f, _ := NewGenerator(1).Run(10)
	if _, err := f.ReplyDates(10, 5, 7, 1); err == nil {
		t.Error("empty date range should fail")
	}
	if _, err := f.ReplyDates(0, 10, 0, 1); err == nil {
		t.Error("maxLagDays=0 should fail")
	}
}

func TestPropagateString(t *testing.T) {
	f, err := NewGenerator(13).Run(500)
	if err != nil {
		t.Fatal(err)
	}
	topics := f.PropagateString(
		func(root int64) string { return "root-topic" },
		func(parent string, child int64) string { return parent },
	)
	for v := int64(0); v < f.N(); v++ {
		if topics[v] != "root-topic" {
			t.Fatalf("topic not inherited at %d", v)
		}
	}
}

func TestForestValidateCatchesCorruption(t *testing.T) {
	f, _ := NewGenerator(1).Run(100)
	f.Parent[50] = 80 // parent after child
	if err := f.Validate(); err == nil {
		t.Error("forward parent should fail validation")
	}
	f2, _ := NewGenerator(1).Run(100)
	if f2.Parent[1] != -1 {
		f2.Depth[1] = 99
		if err := f2.Validate(); err == nil {
			t.Error("bad depth should fail validation")
		}
	}
}

func TestForestProperty(t *testing.T) {
	// Property: for arbitrary seeds/sizes the forest validates and
	// depths are bounded by n.
	fprop := func(seed uint64, nRaw uint16) bool {
		n := int64(nRaw%2000) + 1
		f, err := NewGenerator(seed).Run(n)
		if err != nil {
			return false
		}
		if f.Validate() != nil {
			return false
		}
		return f.MaxDepth() < n
	}
	if err := quick.Check(fprop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedLastTree(t *testing.T) {
	// n smaller than one full tree still works.
	g := NewGenerator(2)
	g.TreeSizeMin, g.TreeSizeMax = 100, 100
	f, err := g.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 30 || len(f.Roots) != 1 {
		t.Fatalf("N=%d roots=%d", f.N(), len(f.Roots))
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}
