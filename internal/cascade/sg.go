package cascade

import (
	"fmt"

	"datasynth/internal/table"
)

// SG adapts the cascade generator to the structure-generator interface
// (sgen.Generator, matched structurally): Run(n) returns the replyOf
// edge table of a forest over n nodes. With Tail == Head and 1→*
// cardinality this plugs cascades straight into the engine, e.g.
//
//	edge replyOf : Message 1-* Message { structure = cascade(...) }
type SG struct {
	Gen *Generator
	// LastForest exposes the forest of the most recent Run for callers
	// that need the tree layout (propagation, depth statistics).
	LastForest *Forest
}

// Name implements sgen.Generator.
func (s *SG) Name() string { return "cascade" }

// Run implements sgen.Generator.
func (s *SG) Run(n int64) (*table.EdgeTable, error) {
	f, err := s.Gen.Run(n)
	if err != nil {
		return nil, err
	}
	s.LastForest = f
	return f.EdgeTable("cascade"), nil
}

// NumNodesForEdges implements sgen.Generator: a forest over n nodes
// has n − #trees edges; with mean tree size s̄ that is n·(1 − 1/s̄).
func (s *SG) NumNodesForEdges(numEdges int64) (int64, error) {
	if numEdges <= 0 {
		return 0, fmt.Errorf("cascade: numEdges must be positive, got %d", numEdges)
	}
	mean := float64(s.Gen.TreeSizeMin+s.Gen.TreeSizeMax) / 2
	if mean <= 1 {
		return 0, fmt.Errorf("cascade: mean tree size must exceed 1 to have edges")
	}
	frac := 1 - 1/mean
	n := int64(float64(numEdges)/frac) + 1
	return n, nil
}
