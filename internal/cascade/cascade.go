// Package cascade implements the paper's future-work tree structures:
// "Other specific graph structures such as trees, which appear in
// message cascades in social networks, might require also special
// strategies. In this case, information propagates through the
// cascade, which could be modeled using a vertex-centric approach that
// propagates the information through the cascade iteratively."
//
// A Forest is a set of reply trees (cascades): every non-root node has
// exactly one parent, so the replyOf edge type is 1→* from child to
// parent and the structure is cycle-free by construction. The package
// also provides the vertex-centric Propagate engine that pushes
// property values down the cascades level by level — e.g. reply dates
// that strictly increase along every root-to-leaf path.
package cascade

import (
	"fmt"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Forest is a set of reply trees over nodes 0..N-1. Parent[v] is the
// parent of v, or -1 for roots. Nodes are ordered so that parents
// always precede children (topological by construction), which makes
// downward propagation a single forward sweep.
type Forest struct {
	Parent []int64
	Roots  []int64
	Depth  []int64 // depth of every node (root = 0)
}

// Generator grows cascades with preferential attachment within each
// tree: a new reply attaches to an existing message of the same
// cascade, either uniformly or biased toward recent/popular nodes —
// the standard model for discussion-thread shapes.
type Generator struct {
	// TreeSizeMin/Max and Gamma define the power-law cascade size
	// distribution P(size) ∝ size^-Gamma on [TreeSizeMin, TreeSizeMax].
	TreeSizeMin, TreeSizeMax int
	Gamma                    float64
	// PreferRecent biases attachment toward the most recent messages
	// with probability PreferRecent (0 = uniform over the cascade,
	// 1 = always reply to the latest message, producing path-like
	// threads).
	PreferRecent float64
	Seed         uint64
}

// NewGenerator returns a cascade generator with discussion-forum
// defaults: sizes 1-100 with exponent 2, mild recency bias.
func NewGenerator(seed uint64) *Generator {
	return &Generator{TreeSizeMin: 1, TreeSizeMax: 100, Gamma: 2.0, PreferRecent: 0.3, Seed: seed}
}

// Run grows cascades until they cover at least n nodes (the last tree
// is truncated to exactly n) and returns the forest.
func (g *Generator) Run(n int64) (*Forest, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cascade: need n > 0, got %d", n)
	}
	if g.TreeSizeMin < 1 || g.TreeSizeMax < g.TreeSizeMin {
		return nil, fmt.Errorf("cascade: tree size bounds [%d,%d] invalid", g.TreeSizeMin, g.TreeSizeMax)
	}
	if g.PreferRecent < 0 || g.PreferRecent > 1 {
		return nil, fmt.Errorf("cascade: PreferRecent %v outside [0,1]", g.PreferRecent)
	}
	sizeDist, err := xrand.NewPowerLawInt(g.TreeSizeMin, g.TreeSizeMax, g.Gamma)
	if err != nil {
		return nil, err
	}
	sizes := xrand.NewStream(g.Seed).DeriveStream("sizes")
	attach := xrand.NewStream(g.Seed).DeriveStream("attach")

	f := &Forest{
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	var next int64
	var draw int64
	for treeIdx := int64(0); next < n; treeIdx++ {
		size := int64(sizeDist.Sample(sizes, treeIdx))
		if next+size > n {
			size = n - next
		}
		root := next
		f.Parent[root] = -1
		f.Depth[root] = 0
		f.Roots = append(f.Roots, root)
		next++
		for c := int64(1); c < size; c++ {
			v := next
			var parent int64
			if attach.Float64(draw) < g.PreferRecent {
				parent = v - 1 // reply to the latest message in the tree
			} else {
				parent = root + attach.Intn(draw+1<<40, v-root)
			}
			draw++
			f.Parent[v] = parent
			f.Depth[v] = f.Depth[parent] + 1
			next++
		}
	}
	return f, nil
}

// N returns the number of nodes.
func (f *Forest) N() int64 { return int64(len(f.Parent)) }

// EdgeTable converts the forest to a replyOf edge table: one edge per
// non-root node, tail = child, head = parent.
func (f *Forest) EdgeTable(name string) *table.EdgeTable {
	et := table.NewEdgeTable(name, f.N())
	for v := int64(0); v < f.N(); v++ {
		if f.Parent[v] >= 0 {
			et.Add(v, f.Parent[v])
		}
	}
	return et
}

// Validate checks the forest invariants: parents precede children,
// depths are consistent, and every tree is rooted.
func (f *Forest) Validate() error {
	rootSet := map[int64]bool{}
	for _, r := range f.Roots {
		rootSet[r] = true
	}
	for v := int64(0); v < f.N(); v++ {
		p := f.Parent[v]
		if p == -1 {
			if !rootSet[v] {
				return fmt.Errorf("cascade: node %d is parentless but not a root", v)
			}
			if f.Depth[v] != 0 {
				return fmt.Errorf("cascade: root %d has depth %d", v, f.Depth[v])
			}
			continue
		}
		if p < 0 || p >= f.N() {
			return fmt.Errorf("cascade: node %d has parent %d out of range", v, p)
		}
		if p >= v {
			return fmt.Errorf("cascade: node %d has parent %d not preceding it", v, p)
		}
		if f.Depth[v] != f.Depth[p]+1 {
			return fmt.Errorf("cascade: node %d depth %d inconsistent with parent depth %d", v, f.Depth[v], f.Depth[p])
		}
	}
	return nil
}

// MaxDepth returns the deepest level.
func (f *Forest) MaxDepth() int64 {
	var max int64
	for _, d := range f.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// TreeSizes returns the size of each cascade in root order.
func (f *Forest) TreeSizes() []int64 {
	if len(f.Roots) == 0 {
		return nil
	}
	sizes := make([]int64, len(f.Roots))
	for i := range f.Roots {
		end := f.N()
		if i+1 < len(f.Roots) {
			end = f.Roots[i+1]
		}
		sizes[i] = end - f.Roots[i]
	}
	return sizes
}

// PropagateInt64 is the vertex-centric propagation engine for int64
// values (dates, counters): roots receive init(root), every child
// receives step(parent value, child id). Because parents precede
// children, one forward sweep settles the whole forest — this is the
// "vertex-centric approach that propagates the information through the
// cascade iteratively" of the paper, specialised to the forest's
// topological layout.
func (f *Forest) PropagateInt64(init func(root int64) int64, step func(parentValue int64, child int64) int64) []int64 {
	out := make([]int64, f.N())
	for v := int64(0); v < f.N(); v++ {
		if f.Parent[v] == -1 {
			out[v] = init(v)
		} else {
			out[v] = step(out[f.Parent[v]], v)
		}
	}
	return out
}

// PropagateString is PropagateInt64 for string values (e.g. a thread
// topic inherited, with mutation, from the parent).
func (f *Forest) PropagateString(init func(root int64) string, step func(parentValue string, child int64) string) []string {
	out := make([]string, f.N())
	for v := int64(0); v < f.N(); v++ {
		if f.Parent[v] == -1 {
			out[v] = init(v)
		} else {
			out[v] = step(out[f.Parent[v]], v)
		}
	}
	return out
}

// ReplyDates is the canonical propagation: the root posts at a date
// drawn from [from, to] and every reply lands 1..maxLagDays later than
// its parent, so dates strictly increase along every path.
func (f *Forest) ReplyDates(from, to int64, maxLagDays int64, seed uint64) ([]int64, error) {
	if to < from {
		return nil, fmt.Errorf("cascade: date range empty")
	}
	if maxLagDays < 1 {
		return nil, fmt.Errorf("cascade: maxLagDays must be >= 1")
	}
	s := xrand.NewStream(seed).DeriveStream("reply-dates")
	dates := f.PropagateInt64(
		func(root int64) int64 {
			return from + s.Intn(root, to-from+1)
		},
		func(parent int64, child int64) int64 {
			return parent + 1 + s.Intn(child+1<<40, maxLagDays)
		},
	)
	return dates, nil
}
