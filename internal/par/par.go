// Package par provides the one concurrency primitive the outer
// pipeline layers share: a bounded-worker fan-out over an index range.
// The export pipeline (table) and the evaluation sweeps (exp) each
// need "run fn over [0,n) on up to W workers, stop on error" — keeping
// a single implementation pins the worker-resolution and
// error-propagation semantics in one place.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered at a fan-out or task boundary,
// converted into an ordinary error so one panicking unit of work
// fails its operation instead of killing the process. The goroutine
// stack of the panic site rides along for the log line — by the time
// the error surfaces, the panicking frame is long gone.
type PanicError struct {
	// Value is what was passed to panic().
	Value any
	// Stack is the panicking goroutine's stack, captured in the
	// deferred recover.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Safe runs fn, converting a panic into a *PanicError. It is the one
// recover point the pipeline layers share: par workers, the engine's
// task scheduler and row-fill workers, and the service's job runner
// all isolate panics through it, so "a panic becomes one failed
// operation, never a dead process" has a single implementation.
func Safe(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Workers runs fn(0) … fn(workers-1), one goroutine per worker, and
// waits for all of them to finish. Each worker runs under Safe; after
// the pool drains, the first recovered panic (lowest worker index) is
// re-raised on the caller's goroutine as its original *PanicError.
// This keeps the call transparent for the generator/matcher worker
// pools, whose workers write only worker-private or index-disjoint
// state and cannot fail with ordinary errors: callers keep their plain
// signatures, while a worker panic is transported to a goroutine with
// a recover boundary above it (engine runTask, service runJob) — one
// crashing worker fails its task, never the process. workers <= 1
// calls fn(0) inline on the caller's goroutine.
func Workers(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var (
		mu       sync.Mutex
		firstErr error
		errW     int
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := Safe(func() error { fn(w); return nil }); err != nil {
				mu.Lock()
				if firstErr == nil || w < errW {
					firstErr, errW = err, w
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		panic(firstErr)
	}
}

// ForEach runs fn(0) … fn(n-1) on up to workers goroutines
// (workers <= 0 means NumCPU, 1 runs the plain serial loop). Indices
// are claimed in order; after the first failure no new index is
// claimed, in-flight calls finish, and the error of the
// lowest-indexed failure observed is returned — matching what the
// serial loop would have surfaced. A panicking fn is isolated: the
// panic is recovered into a *PanicError carrying the stack and
// reported with the same lowest-index discipline, so one bad index
// fails the fan-out instead of crashing the process. fn must treat
// its index as the only shared state it may write (e.g. one output
// slot per index).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: ctx is checked
// before each index is claimed, so a canceled or expired context stops
// the fan-out at the next index boundary — in-flight fn calls still
// run to completion (fn itself decides whether to observe ctx), and
// ctx.Err() is reported with the same lowest-index discipline as fn
// errors. A context that cancels after the last fn returned does not
// retroactively fail the call.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			i := i
			if err := Safe(func() error { return fn(i) }); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := Safe(func() error { return fn(i) }); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
