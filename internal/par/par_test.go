package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 53
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestError(t *testing.T) {
	// Indices 10 and 30 fail; whichever order workers hit them, the
	// reported error must be the lowest-indexed one observed — and with
	// workers=1 exactly the serial loop's first error.
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(50, workers, func(i int) error {
			ran.Add(1)
			if i == 10 || i == 30 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if err.Error() != "fail at 10" && workers == 1 {
			t.Fatalf("serial error = %v", err)
		}
		if err.Error() == "fail at 30" && workers > 1 {
			// 30 can only win if 10 was never attempted — impossible:
			// indices are claimed in order, so 10 is claimed before 30.
			t.Fatalf("workers=%d: higher-index error won: %v", workers, err)
		}
		if int(ran.Load()) >= 50 {
			t.Errorf("workers=%d: no early stop (%d calls)", workers, ran.Load())
		}
	}
}
