package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 53
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachCtxPreCanceled: an already-canceled context runs nothing
// and surfaces ctx.Err(), at every worker count.
func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEachCtx(ctx, 20, workers, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("workers=%d: pre-canceled context still ran %d calls", workers, n)
		}
	}
}

// TestForEachCtxCancelMidRun: cancellation between indices stops the
// fan-out from claiming new work and is reported as the error.
func TestForEachCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEachCtx(ctx, 1000, workers, func(i int) error {
			ran.Add(1)
			if i == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Serial sees exactly indices 0..3; parallel may have a few
		// in-flight claims past the cancel, but nothing like the full
		// range.
		if n := int(ran.Load()); n >= 1000 || (workers == 1 && n != 4) {
			t.Errorf("workers=%d: %d calls ran after mid-run cancel", workers, n)
		}
	}
}

func TestForEachReturnsLowestError(t *testing.T) {
	// Indices 10 and 30 fail; whichever order workers hit them, the
	// reported error must be the lowest-indexed one observed — and with
	// workers=1 exactly the serial loop's first error.
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(50, workers, func(i int) error {
			ran.Add(1)
			if i == 10 || i == 30 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if err.Error() != "fail at 10" && workers == 1 {
			t.Fatalf("serial error = %v", err)
		}
		if err.Error() == "fail at 30" && workers > 1 {
			// 30 can only win if 10 was never attempted — impossible:
			// indices are claimed in order, so 10 is claimed before 30.
			t.Fatalf("workers=%d: higher-index error won: %v", workers, err)
		}
		if int(ran.Load()) >= 50 {
			t.Errorf("workers=%d: no early stop (%d calls)", workers, ran.Load())
		}
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(8, workers, func(i int) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic must surface as an error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %T %v, want *PanicError", workers, err, err)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("workers=%d: PanicError.Value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError must carry the stack", workers)
		}
	}
}

func TestSafeRecoversAndPassesThrough(t *testing.T) {
	if err := Safe(func() error { return nil }); err != nil {
		t.Fatalf("Safe(ok) = %v", err)
	}
	want := errors.New("plain")
	if err := Safe(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Safe must pass plain errors through, got %v", err)
	}
	err := Safe(func() error { panic(fmt.Errorf("wrapped %d", 7)) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Safe(panic) = %T %v, want *PanicError", err, err)
	}
}

func TestWorkersCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 32} {
		n := workers
		if n < 1 {
			n = 1
		}
		hits := make([]atomic.Int64, n)
		Workers(workers, func(w int) { hits[w].Add(1) })
		for w := range hits {
			if got := hits[w].Load(); got != 1 {
				t.Errorf("workers=%d: fn(%d) ran %d times, want 1", workers, w, got)
			}
		}
	}
}

func TestWorkersInlineWhenSingle(t *testing.T) {
	// workers <= 1 must run fn on the caller's goroutine so callers
	// that rely on goroutine-local sequencing (profiling labels, the
	// serial determinism baseline) see no goroutine hop. A panic then
	// propagates raw — there is no pool boundary to re-wrap it.
	defer func() {
		if r := recover(); r != "inline" {
			t.Fatalf("recover() = %v, want raw panic value", r)
		}
	}()
	Workers(1, func(w int) { panic("inline") })
}

func TestWorkersRepanicsLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recover() = %T %v, want *PanicError", r, r)
		}
		if pe.Value != "boom 1" {
			t.Fatalf("re-raised panic value = %v, want the lowest worker's", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("re-raised PanicError lost its stack")
		}
	}()
	Workers(4, func(w int) {
		if w == 1 || w == 3 {
			panic(fmt.Sprintf("boom %d", w))
		}
	})
	t.Fatal("Workers with a panicking worker must re-panic")
}

func TestWorkersWaitsForAllBeforePanic(t *testing.T) {
	// The re-raise must happen only after every worker finished: the
	// pool contract is that worker-written state is fully settled when
	// control returns (normally or by panic).
	var finished atomic.Int64
	func() {
		defer func() { recover() }()
		Workers(8, func(w int) {
			if w == 0 {
				panic("early")
			}
			finished.Add(1)
		})
	}()
	if got := finished.Load(); got != 7 {
		t.Fatalf("%d workers finished before re-panic, want 7", got)
	}
}
