// Command datasynthlint runs the project-specific analyzer suite —
// detrange, rngdiscipline, nakedgo, fsdiscipline — over the packages
// matching the given patterns (default ./...). It is the mechanical
// enforcement of the determinism, panic-isolation and faultfs
// contracts; see docs/lint.md.
//
// Usage:
//
//	go run ./lint/cmd/datasynthlint ./...
//
// Findings print as file:line:col: message (analyzer). Exit status is
// 0 when clean, 1 when there are findings, 2 on a driver error.
// Individual findings are suppressed in source with
// //lint:allow <analyzer> <reason> on the finding's line or the line
// above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"datasynth/lint/analysis"
	"datasynth/lint/analyzers"
	"datasynth/lint/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: datasynthlint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasynthlint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	type finding struct {
		file     string
		line     int
		col      int
		message  string
		analyzer string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers.All() {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "datasynthlint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range analysis.Filter(pkg.Fset, pkg.Files, a.Name, diags) {
				p := pkg.Fset.Position(d.Pos)
				name := p.Filename
				if cwd != "" {
					if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
						name = rel
					}
				}
				findings = append(findings, finding{name, p.Line, p.Column, d.Message, a.Name})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.message, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "datasynthlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
