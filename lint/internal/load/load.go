// Package load type-checks Go packages for the datasynthlint driver
// without golang.org/x/tools/go/packages (the build environment is
// offline, so the x/tools loader cannot be vendored in). It shells out
// to `go list -export -deps -json` to expand patterns and to locate
// build-cache export data, parses the matched packages from source
// with comments (the //lint:allow directives live there), and
// type-checks them with the standard gc importer reading dependency
// types from that export data — the same shape as an x/tools
// LoadSyntax pass, a few hundred milliseconds for the whole repo.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Dir is the directory holding the source files.
	Dir string
	// Fset maps positions for Files (shared across one Load call).
	Fset *token.FileSet
	// Files is the parsed syntax, comments included, in GoFiles order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the use/def/type resolution for Files.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the gc-importer lookup function over a
// path→export-file map.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(e)
	}
}

// parseDir parses the named files of one package directory.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the types.Info maps the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load expands patterns relative to dir (the repo root for the
// datasynthlint driver) and returns every directly-matched package,
// parsed from source and fully type-checked, sorted by import path.
// Dependencies — standard library included — are resolved from build
// cache export data, never re-checked from source.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{
		"-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly",
	}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	conf := types.Config{Importer: imp}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", p.ImportPath, err)
		}
		info := newInfo()
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
