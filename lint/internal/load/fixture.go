package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// LoadFixture type-checks the analysistest fixture package rooted at
// srcRoot/importPath. Fixtures use the classic analysistest layout —
// testdata/src/<importpath>/*.go — so a fixture can carry stub
// packages under real datasynth import paths (e.g. a fake
// datasynth/internal/par) for the analyzers' type-based matching.
// Imports resolve against srcRoot first, then against the standard
// library via build-cache export data.
func LoadFixture(srcRoot, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	// Parse the whole fixture tree reachable from importPath so one
	// `go list` call can fetch export data for every stdlib import.
	parsed := map[string][]*ast.File{}
	if err := parseFixtureTree(fset, srcRoot, importPath, parsed); err != nil {
		return nil, err
	}
	stdlib := map[string]bool{}
	for _, files := range parsed {
		for _, f := range files {
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, fixture := parsed[p]; !fixture {
					stdlib[p] = true
				}
			}
		}
	}
	exports := map[string]string{}
	if len(stdlib) > 0 {
		patterns := make([]string, 0, len(stdlib))
		for p := range stdlib {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(srcRoot, append([]string{
			"-export", "-deps", "-json=ImportPath,Export",
		}, patterns...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fi := &fixtureImporter{
		fset:    fset,
		parsed:  parsed,
		std:     importer.ForCompiler(fset, "gc", exportLookup(exports)),
		checked: map[string]*checkedFixture{},
	}
	tpkg, info, err := fi.check(importPath)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        filepath.Join(srcRoot, filepath.FromSlash(importPath)),
		Fset:       fset,
		Files:      parsed[importPath],
		Types:      tpkg,
		Info:       info,
	}, nil
}

// parseFixtureTree parses importPath's fixture directory and,
// recursively, every fixture package it imports.
func parseFixtureTree(fset *token.FileSet, srcRoot, importPath string, parsed map[string][]*ast.File) error {
	if _, done := parsed[importPath]; done {
		return nil
	}
	dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("load: fixture %s: %v", importPath, err)
	}
	var names []string
	for _, ent := range entries {
		if !ent.IsDir() && filepath.Ext(ent.Name()) == ".go" {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("load: fixture %s has no Go files in %s", importPath, dir)
	}
	files, err := parseDir(fset, dir, names)
	if err != nil {
		return fmt.Errorf("load: fixture %s: %v", importPath, err)
	}
	parsed[importPath] = files
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(p))); err == nil && st.IsDir() {
				if err := parseFixtureTree(fset, srcRoot, p, parsed); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkedFixture caches one type-checked fixture package.
type checkedFixture struct {
	pkg  *types.Package
	info *types.Info
	err  error
}

// fixtureImporter resolves imports during fixture type-checking:
// fixture packages from parsed source, everything else from stdlib
// export data.
type fixtureImporter struct {
	fset    *token.FileSet
	parsed  map[string][]*ast.File
	std     types.Importer
	checked map[string]*checkedFixture
}

// Import implements types.Importer.
func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if _, ok := fi.parsed[path]; ok {
		pkg, _, err := fi.check(path)
		return pkg, err
	}
	return fi.std.Import(path)
}

// check type-checks one fixture package (memoised).
func (fi *fixtureImporter) check(path string) (*types.Package, *types.Info, error) {
	if c, ok := fi.checked[path]; ok {
		return c.pkg, c.info, c.err
	}
	c := &checkedFixture{info: newInfo()}
	fi.checked[path] = c
	conf := types.Config{Importer: fi}
	c.pkg, c.err = conf.Check(path, fi.fset, fi.parsed[path], c.info)
	if c.err != nil {
		c.err = fmt.Errorf("load: type-checking fixture %s: %v", path, c.err)
	}
	return c.pkg, c.info, c.err
}
