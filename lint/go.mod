module datasynth/lint

go 1.24

// Tool pins — datasynthlint itself is dependency-free (stdlib only;
// lint/analysis is an API-compatible subset of
// golang.org/x/tools/go/analysis, see lint/analysis/analysis.go), so
// these are recorded here as the single source of truth for the CI
// lint job rather than as require directives: adding requires for
// tools that are only `go install`ed would force every offline
// `go build ./...` through module resolution for code nothing imports.
// CI installs exactly these versions (see .github/workflows/ci.yml,
// env STATICCHECK_VERSION / GOVULNCHECK_VERSION); bump them here and
// there together.
//
//	honnef.co/go/tools/cmd/staticcheck  2025.1.1
//	golang.org/x/vuln/cmd/govulncheck   v1.1.4
