// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a
// Pass hands it one type-checked package, and Report collects
// position-tagged diagnostics.
//
// The real x/tools framework is the natural home for these analyzers —
// this package exists because the datasynth build environment is fully
// offline (no module proxy), so the lint module vendors the minimal
// API shape instead. The field and method names match x/tools exactly;
// porting an analyzer onto the upstream framework is a one-line import
// change, and the analyzers deliberately use nothing beyond this
// subset.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text: first line is a summary,
	// the rest explains the contract the analyzer enforces.
	Doc string
	// Run applies the check to one package. Findings are delivered
	// through pass.Report; the result value is unused by this driver
	// and exists for x/tools API compatibility.
	Run func(pass *Pass) (any, error)
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for all Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is where the finding anchors.
	Pos token.Pos
	// Message states the violated contract and the fix.
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
