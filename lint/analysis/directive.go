package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive. Grammar:
//
//	//lint:allow <analyzer> <reason...>
//
// The directive suppresses findings of <analyzer> on its own line
// (trailing comment) or on the line directly below it (directive on
// its own line, the usual form). The reason is mandatory: a directive
// without one does not suppress anything and is itself reported, so
// every silenced finding carries a written justification in the
// source.
const allowPrefix = "//lint:allow"

// allow is one parsed //lint:allow directive.
type allow struct {
	pos      token.Pos
	line     int
	file     string
	analyzer string
	reason   string
}

// parseAllows extracts every //lint:allow directive from the files.
func parseAllows(fset *token.FileSet, files []*ast.File) []allow {
	var out []allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // e.g. //lint:allowother
				}
				// Cut a trailing analysistest marker so fixtures can
				// assert on directives ("//lint:allow x // want ...").
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				fields := strings.Fields(text)
				a := allow{pos: c.Pos()}
				p := fset.Position(c.Pos())
				a.file, a.line = p.Filename, p.Line
				if len(fields) > 0 {
					a.analyzer = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// Filter applies //lint:allow directives for the named analyzer to
// diags: findings covered by a well-formed directive are dropped, and
// every directive naming the analyzer but missing its mandatory reason
// becomes a finding of its own. The returned slice preserves the order
// of the surviving input diagnostics, with missing-reason findings
// appended.
func Filter(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	allows := parseAllows(fset, files)
	if len(allows) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	suppressed := map[key]bool{}
	var extra []Diagnostic
	for _, a := range allows {
		if a.analyzer != name {
			continue
		}
		if a.reason == "" {
			extra = append(extra, Diagnostic{
				Pos:     a.pos,
				Message: "//lint:allow " + name + " directive is missing its mandatory reason",
			})
			continue
		}
		// A trailing directive covers its own line; a directive on its
		// own line covers the line below.
		suppressed[key{a.file, a.line}] = true
		suppressed[key{a.file, a.line + 1}] = true
	}
	kept := diags[:0:0]
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if suppressed[key{p.Filename, p.Line}] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, extra...)
}
