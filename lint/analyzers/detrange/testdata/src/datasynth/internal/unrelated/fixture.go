// Fixture: a package outside detrange's output-feeding scope may
// iterate maps freely.
package unrelated

func free(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
