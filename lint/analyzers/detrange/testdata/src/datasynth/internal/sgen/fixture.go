// Fixture for detrange: this package path is inside the analyzer's
// output-feeding scope.
package sgen

import "sort"

func sink(vs ...string) {}

func naked(m map[string]int) {
	for k := range m { // want `range over map m has nondeterministic order`
		sink(k)
	}
}

func nakedValue(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m has nondeterministic order`
		if v > 0 {
			total += v
		}
	}
	return total
}

func blessed(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sink(keys...)
}

func blessedIndexed(m map[string]int) []string {
	keys := make([]string, len(m))
	i := 0
	for k := range m {
		keys[i] = k
		i++
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func collectedNeverSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `collected but never sorted before use`
		keys = append(keys, k)
	}
	return keys
}

func keylessNeverObservesOrder(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func allowed(m map[string]int) {
	//lint:allow detrange fixture: order feeds a log line only, never output bytes
	for k := range m {
		sink(k)
	}
}

func allowMissingReason(m map[string]int) {
	//lint:allow detrange // want `missing its mandatory reason`
	for k := range m { // want `range over map m has nondeterministic order`
		sink(k)
	}
}
