// Package detrange flags `for range` over a map in the packages whose
// output feeds generated datasets. Map iteration order is randomized
// by the runtime, so any map range on an output-feeding path is a
// latent byte-determinism bug — and byte-determinism is what makes the
// content-addressable dataset cache sound (a dataset must be a pure
// function of its canonical schema hash).
//
// The one blessed shape is key (or value) collection: a loop whose
// body only appends the key/value into a slice, with the slice sorted
// before use. detrange recognises that shape — every statement in the
// body is an append/indexed store of the range variables plus optional
// counter bookkeeping, and a sort.* or slices.Sort* call over the
// collected slice appears later in the same function. Anything else
// needs a //lint:allow detrange <reason> directive stating why the
// iteration order cannot reach output bytes.
package detrange

import (
	"go/ast"
	"go/types"

	"datasynth/lint/analysis"
	"datasynth/lint/analyzers/internal/lintutil"
)

// scope is the set of output-feeding packages the determinism contract
// covers (doc.go "determinism contract": everything between schema and
// exported bytes).
var scope = map[string]bool{
	"datasynth/internal/sgen":  true,
	"datasynth/internal/pgen":  true,
	"datasynth/internal/match": true,
	"datasynth/internal/core":  true,
	"datasynth/internal/table": true,
	"datasynth/internal/dsl":   true,
	"datasynth/internal/exp":   true,
}

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map iteration in output-feeding packages unless the keys " +
		"are collected into a slice and sorted before use",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil, nil
}

// checkFile walks one file keeping track of the innermost enclosing
// function body, which bounds the "sorted afterwards" search.
func checkFile(pass *analysis.Pass, file *ast.File) {
	var enclosing []*ast.BlockStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			enclosing = append(enclosing, n.Body)
			ast.Inspect(n.Body, walk)
			enclosing = enclosing[:len(enclosing)-1]
			return false
		case *ast.FuncLit:
			enclosing = append(enclosing, n.Body)
			ast.Inspect(n.Body, walk)
			enclosing = enclosing[:len(enclosing)-1]
			return false
		case *ast.RangeStmt:
			checkRange(pass, n, current(enclosing))
		}
		return true
	}
	ast.Inspect(file, walk)
}

// current returns the innermost enclosing function body, nil at file
// scope (impossible for a range statement, but kept total).
func current(stack []*ast.BlockStmt) *ast.BlockStmt {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// checkRange reports rs when it iterates a map outside the blessed
// collect-then-sort shape.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, body *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m` never observes the iteration order.
	if rs.Key == nil && rs.Value == nil {
		return
	}
	targets, collects := collectTargets(pass.TypesInfo, rs)
	if !collects {
		pass.Reportf(rs.For, "range over map %s has nondeterministic order on an output-feeding path; collect the keys into a slice and sort them before use", types.ExprString(rs.X))
		return
	}
	if !sortedAfter(pass.TypesInfo, body, rs, targets) {
		pass.Reportf(rs.For, "map keys from %s are collected but never sorted before use; add a sort.* or slices.Sort* call on the collected slice", types.ExprString(rs.X))
	}
}

// collectTargets decides whether rs is a pure key/value-collection
// loop and returns the slice variables collected into. The body may
// contain only: appends of the range variables into a slice, indexed
// stores of the range variables into a slice, and integer counter
// updates.
func collectTargets(info *types.Info, rs *ast.RangeStmt) (map[types.Object]bool, bool) {
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				rangeVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	if len(rangeVars) == 0 {
		return nil, false
	}
	targets := map[types.Object]bool{}
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// counter bookkeeping (i++)
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return nil, false
			}
			obj, ok := collectAssign(info, s, rangeVars)
			if !ok {
				return nil, false
			}
			if obj != nil {
				targets[obj] = true
			}
		default:
			return nil, false
		}
	}
	if len(targets) == 0 {
		return nil, false
	}
	return targets, true
}

// collectAssign classifies one assignment inside a candidate
// collection loop: `s = append(s, k)` or `s[i] = k` collects into s,
// `n += 1`-style counter updates collect nothing. Any other assignment
// disqualifies the loop.
func collectAssign(info *types.Info, s *ast.AssignStmt, rangeVars map[types.Object]bool) (types.Object, bool) {
	switch lhs := s.Lhs[0].(type) {
	case *ast.Ident:
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isAppendOfRangeVars(info, call, rangeVars) {
			return info.ObjectOf(lhs), true
		}
		// plain counter updates: n += x with integer type
		if basicInt(info, lhs) {
			return nil, true
		}
	case *ast.IndexExpr:
		base, ok := lhs.X.(*ast.Ident)
		if !ok {
			return nil, false
		}
		if _, isSlice := info.TypeOf(base).Underlying().(*types.Slice); !isSlice {
			return nil, false
		}
		if id, ok := s.Rhs[0].(*ast.Ident); ok && rangeVars[info.ObjectOf(id)] {
			return info.ObjectOf(base), true
		}
	}
	return nil, false
}

// isAppendOfRangeVars reports whether call is append(dst, args...)
// with every appended argument a range variable.
func isAppendOfRangeVars(info *types.Info, call *ast.CallExpr, rangeVars map[types.Object]bool) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	for _, arg := range call.Args[1:] {
		a, ok := arg.(*ast.Ident)
		if !ok || !rangeVars[info.ObjectOf(a)] {
			return false
		}
	}
	return true
}

// basicInt reports whether e has an integer type.
func basicInt(info *types.Info, e ast.Expr) bool {
	b, ok := info.TypeOf(e).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAfter reports whether, later in the enclosing function body, a
// sort.* or slices.Sort* call takes one of the collected slices as an
// argument.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, targets map[types.Object]bool) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		f := lintutil.Callee(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			hit := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && targets[info.ObjectOf(id)] {
					hit = true
				}
				return !hit
			})
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
