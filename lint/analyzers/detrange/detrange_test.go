package detrange_test

import (
	"testing"

	"datasynth/lint/analysistest"
	"datasynth/lint/analyzers/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrange.Analyzer,
		"datasynth/internal/sgen",
		"datasynth/internal/unrelated",
	)
}
