// Package rngdiscipline forbids ambient randomness in the packages
// whose output feeds generated datasets. The determinism contract
// requires every random draw to derive from the schema seed through
// xrand.Stream (DeriveStream/DeriveN/Seq), so the same canonical
// schema always yields the same bytes at any worker count:
//
//   - importing math/rand, math/rand/v2 or crypto/rand in a scoped
//     package is a finding — math/rand's global source is seeded per
//     process and crypto/rand is nondeterministic by design;
//   - seeding an xrand stream from wall-clock time or the process id
//     (time.Now, os.Getpid, os.Getppid anywhere in the seed argument)
//     is a finding — it launders nondeterminism through the blessed
//     API.
package rngdiscipline

import (
	"go/ast"
	"strconv"

	"datasynth/lint/analysis"
	"datasynth/lint/analyzers/internal/lintutil"
)

// scope mirrors detrange: the output-feeding packages covered by the
// determinism contract.
var scope = map[string]bool{
	"datasynth/internal/sgen":  true,
	"datasynth/internal/pgen":  true,
	"datasynth/internal/match": true,
	"datasynth/internal/core":  true,
	"datasynth/internal/table": true,
	"datasynth/internal/dsl":   true,
	"datasynth/internal/exp":   true,
}

// forbiddenImports are the ambient randomness sources.
var forbiddenImports = map[string]string{
	"math/rand":    "process-seeded global source",
	"math/rand/v2": "process-seeded global source",
	"crypto/rand":  "nondeterministic by design",
}

// xrandPkg is the blessed randomness API.
const xrandPkg = "datasynth/internal/xrand"

// nondetSeeds are the calls that must never feed a stream seed.
var nondetSeeds = map[string]map[string]bool{
	"time": {"Now": true},
	"os":   {"Getpid": true, "Getppid": true},
}

// Analyzer is the rngdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc: "forbids math/rand, crypto/rand and time/pid-seeded randomness in " +
		"generator/matcher packages; randomness must derive from xrand.Stream",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s (%s) is forbidden in deterministic packages; derive randomness from xrand.Stream via DeriveStream/DeriveN/Seq", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := lintutil.Callee(pass.TypesInfo, call)
			if !lintutil.FromPkg(f, xrandPkg) {
				return true
			}
			for _, arg := range call.Args {
				if bad := nondetCall(pass, arg); bad != "" {
					pass.Reportf(call.Pos(), "xrand.%s seeded from %s; stream seeds must be deterministic (derive them from the schema seed)", f.Name(), bad)
				}
			}
			return true
		})
	}
	return nil, nil
}

// nondetCall returns the name of the first time/pid call inside e, or
// "" when e is free of them.
func nondetCall(pass *analysis.Pass, e ast.Expr) string {
	bad := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if bad != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := lintutil.Callee(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if names, ok := nondetSeeds[f.Pkg().Path()]; ok && names[f.Name()] {
			bad = f.Pkg().Path() + "." + f.Name()
			return false
		}
		return true
	})
	return bad
}
