// Fixture: ambient randomness is fine outside the deterministic scope
// (CLI tooling, tests, experiment drivers own their own seeds).
package unrelated

import "math/rand"

func free() int { return rand.Int() }
