// Package xrand is a fixture stub standing in for the real blessed
// randomness API; rngdiscipline matches it by import path only.
package xrand

type Stream struct{ seed uint64 }

func NewStream(seed uint64) Stream { return Stream{seed: seed} }

func (s Stream) DeriveStream(label string) Stream { return s }

func (s Stream) DeriveN(label string, n uint64) Stream { return s }
