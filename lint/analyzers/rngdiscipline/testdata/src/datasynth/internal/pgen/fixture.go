// Fixture for rngdiscipline: this package path is inside the
// analyzer's deterministic scope.
package pgen

import (
	crand "crypto/rand" // want `import of crypto/rand \(nondeterministic by design\) is forbidden`
	mrand "math/rand"   // want `import of math/rand \(process-seeded global source\) is forbidden`
	"os"
	"time"

	"datasynth/internal/xrand"
)

func ambient() int64 {
	b := make([]byte, 8)
	crand.Read(b)
	return mrand.Int63()
}

func timeSeeded() xrand.Stream {
	return xrand.NewStream(uint64(time.Now().UnixNano())) // want `xrand.NewStream seeded from time.Now`
}

func pidSeeded() xrand.Stream {
	return xrand.NewStream(uint64(os.Getpid())) // want `xrand.NewStream seeded from os.Getpid`
}

func deterministic(seed uint64) xrand.Stream {
	return xrand.NewStream(seed).DeriveStream("fixture")
}

func allowedJitter() xrand.Stream {
	//lint:allow rngdiscipline fixture: jitter for a retry backoff, never feeds dataset bytes
	return xrand.NewStream(uint64(time.Now().UnixNano()))
}

func allowMissingReason() xrand.Stream {
	//lint:allow rngdiscipline // want `missing its mandatory reason`
	return xrand.NewStream(uint64(time.Now().UnixNano())) // want `seeded from time.Now`
}
