package rngdiscipline_test

import (
	"testing"

	"datasynth/lint/analysistest"
	"datasynth/lint/analyzers/rngdiscipline"
)

func TestRngDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rngdiscipline.Analyzer,
		"datasynth/internal/pgen",
		"datasynth/internal/unrelated",
	)
}
