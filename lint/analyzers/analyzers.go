// Package analyzers registers the datasynthlint analyzer suite: the
// mechanical backstops for the repo's three load-bearing invariants —
// byte-determinism of generated datasets (detrange, rngdiscipline),
// panic isolation at every worker layer (nakedgo), and
// faultfs-mediated filesystem access in the cache/export paths
// (fsdiscipline). See docs/lint.md for the contract each one enforces.
package analyzers

import (
	"datasynth/lint/analysis"
	"datasynth/lint/analyzers/detrange"
	"datasynth/lint/analyzers/fsdiscipline"
	"datasynth/lint/analyzers/nakedgo"
	"datasynth/lint/analyzers/rngdiscipline"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrange.Analyzer,
		fsdiscipline.Analyzer,
		nakedgo.Analyzer,
		rngdiscipline.Analyzer,
	}
}
