// Package par is a fixture stub standing in for the real
// panic-isolation package; nakedgo matches it by import path only and
// exempts its internals — the primitives own their recover discipline,
// including raw go statements like the one below.
package par

func Safe(fn func() error) error { return fn() }

func ForEach(n, workers int, fn func(i int) error) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			fn(i)
		}
	}()
	<-done
	return nil
}

func Workers(workers int, fn func(w int)) {
	for w := 0; w < workers; w++ {
		fn(w)
	}
}
