// Fixture for nakedgo: any package other than internal/par is in
// scope.
package svc

import "datasynth/internal/par"

func work() {}

func naked() {
	go work() // want `naked go statement`
	go func() { // want `naked go statement`
		work()
	}()
}

func guardedDirect(n int) {
	go par.ForEach(n, 1, func(int) error { return nil })
	go par.Workers(2, func(int) {})
}

func guardedBody(logf func(string, ...any)) {
	go func() {
		if err := par.Safe(func() error { work(); return nil }); err != nil {
			logf("worker crashed: %v", err)
		}
	}()
}

func allowedPlumbing(c chan int) {
	//lint:allow nakedgo fixture: body is a single channel send and cannot panic
	go func() { c <- 1 }()
}

func allowMissingReason(c chan int) {
	//lint:allow nakedgo // want `missing its mandatory reason`
	go func() { c <- 1 }() // want `naked go statement`
}
