package nakedgo_test

import (
	"testing"

	"datasynth/lint/analysistest"
	"datasynth/lint/analyzers/nakedgo"
)

func TestNakedGo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nakedgo.Analyzer,
		"datasynth/internal/svc",
		// The isolation package itself is exempt: its stub contains a
		// raw go statement and must produce no findings.
		"datasynth/internal/par",
	)
}
