// Package nakedgo flags `go` statements outside internal/par that do
// not route through the panic-isolation primitives. A panic on a raw
// goroutine kills the whole process — for datasynthd that means one
// hostile schema crashing the daemon instead of failing one job. PR 8
// closed that hole at the known worker layers; this analyzer keeps it
// closed everywhere by demanding that every goroutine either
//
//   - is spawned by internal/par itself (ForEach/ForEachCtx/Workers own
//     their recover discipline), or
//   - immediately calls a par primitive (par.Safe, par.ForEach,
//     par.ForEachCtx, par.Workers) somewhere in its function-literal
//     body, so a panic is recovered into a *par.PanicError instead of
//     unwinding off the goroutine.
//
// Goroutines whose bodies are pure channel plumbing (and therefore
// cannot panic) are allow-listed at the site with
// //lint:allow nakedgo <reason> — the reason is mandatory, so every
// exemption carries its justification in the source.
//
// The check is a backstop, not a proof: a body that buries its par.Safe
// call behind unguarded work still passes. It exists to catch the
// common regression — a new worker pool written without any recover
// discipline at all.
package nakedgo

import (
	"go/ast"

	"datasynth/lint/analysis"
	"datasynth/lint/analyzers/internal/lintutil"
)

// parPkg is the panic-isolation package; its own internals are exempt.
const parPkg = "datasynth/internal/par"

// guards are the par functions that establish a recover boundary.
var guards = map[string]bool{
	"Safe":       true,
	"ForEach":    true,
	"ForEachCtx": true,
	"Workers":    true,
}

// Analyzer is the nakedgo check.
var Analyzer = &analysis.Analyzer{
	Name: "nakedgo",
	Doc: "flags go statements outside internal/par that don't route " +
		"through par.Safe/par.ForEach/par.Workers panic isolation",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == parPkg {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if guarded(pass, gs) {
				return true
			}
			pass.Reportf(gs.Go, "naked go statement: a panic here kills the process; route the fan-out through par.ForEach/par.Workers or wrap the body in par.Safe (or //lint:allow nakedgo <reason> if the body cannot panic)")
			return true
		})
	}
	return nil, nil
}

// guarded reports whether the go statement routes through a par
// recover boundary: either the spawned call itself is a par guard, or
// the spawned function literal contains a call to one.
func guarded(pass *analysis.Pass, gs *ast.GoStmt) bool {
	if f := lintutil.Callee(pass.TypesInfo, gs.Call); f != nil && lintutil.FromPkg(f, parPkg) && guards[f.Name()] {
		return true
	}
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := lintutil.Callee(pass.TypesInfo, call); f != nil && lintutil.FromPkg(f, parPkg) && guards[f.Name()] {
			found = true
			return false
		}
		return true
	})
	return found
}
