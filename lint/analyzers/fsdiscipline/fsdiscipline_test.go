package fsdiscipline_test

import (
	"testing"

	"datasynth/lint/analysistest"
	"datasynth/lint/analyzers/fsdiscipline"
)

func TestFsDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), fsdiscipline.Analyzer,
		"datasynth/internal/scenario",
		"datasynth/internal/table",
		"datasynth/internal/unrelated",
	)
}
