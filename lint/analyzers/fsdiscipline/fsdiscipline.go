// Package fsdiscipline flags direct os filesystem calls in the cache
// and export layers. PR 8's fault-injection harness (internal/faultfs)
// only proves what it can reach: every filesystem verb in
// internal/service and internal/table must go through a faultfs.FS so
// the injected-fault tests (torn writes, failed renames, ENOSPC,
// crash-before-commit) keep covering the whole commit surface. A
// direct os.Rename is invisible to the harness — it works until the
// first real disk failure, exactly the class of bug the harness
// exists to keep dead.
package fsdiscipline

import (
	"go/ast"
	"go/types"

	"datasynth/lint/analysis"
)

// scope is the set of packages whose filesystem access must be
// faultfs-mediated.
var scope = map[string]bool{
	"datasynth/internal/scenario": true,
	"datasynth/internal/service":  true,
	"datasynth/internal/table":    true,
}

// verbs are the os functions mirrored by faultfs.FS; using any of them
// directly bypasses fault injection.
var verbs = map[string]bool{
	"Create":    true,
	"Open":      true,
	"Rename":    true,
	"WriteFile": true,
	"ReadFile":  true,
	"MkdirAll":  true,
	"RemoveAll": true,
	"Remove":    true,
	"ReadDir":   true,
	"Stat":      true,
}

// Analyzer is the fsdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "fsdiscipline",
	Doc: "flags direct os.Create/Open/Rename/... calls in internal/service " +
		"and internal/table; filesystem access there must go through faultfs.FS",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "os" || !verbs[f.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "direct os.%s bypasses faultfs.FS; route it through the package's FS so fault injection covers this path", f.Name())
			return true
		})
	}
	return nil, nil
}
