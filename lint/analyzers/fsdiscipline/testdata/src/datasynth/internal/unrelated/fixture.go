// Fixture: direct os calls are fine outside the cache/export layers.
package unrelated

import "os"

func free(dir string) error {
	return os.MkdirAll(dir, 0o755)
}
