// Fixture for fsdiscipline: the scenario registry persists through
// faultfs two-phase commits, so its package path is inside the
// mediated scope too — the registry crash tests only prove what they
// can reach.
package scenario

import "os"

// FS mirrors the faultfs surface the registry threads through.
type FS interface {
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
}

func directCommit(dir string, raw []byte) error {
	if err := os.WriteFile(dir+"/.tmp-v1.json", raw, 0o644); err != nil { // want `direct os\.WriteFile bypasses faultfs\.FS`
		return err
	}
	return os.Rename(dir+"/.tmp-v1.json", dir+"/v1.json") // want `direct os\.Rename bypasses faultfs\.FS`
}

func mediatedCommit(fsys FS, dir string, raw []byte) error {
	if err := fsys.WriteFile(dir+"/.tmp-v1.json", raw, 0o644); err != nil {
		return err
	}
	return fsys.Rename(dir+"/.tmp-v1.json", dir+"/v1.json")
}
