// Fixture for fsdiscipline: this package path is inside the
// faultfs-mediated scope.
package table

import "os"

// FS mirrors the faultfs.FS surface the real packages thread through;
// calls through it resolve to the interface, not package os, so they
// are invisible to the analyzer — by design, that is the fixed code.
type FS interface {
	Create(name string) (*os.File, error)
	Rename(oldpath, newpath string) error
}

func direct(dir string) error {
	f, err := os.Create(dir + "/part") // want `direct os\.Create bypasses faultfs\.FS`
	if err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(dir+"/part", dir+"/final"); err != nil { // want `direct os\.Rename bypasses faultfs\.FS`
		return err
	}
	if _, err := os.ReadDir(dir); err != nil { // want `direct os\.ReadDir bypasses faultfs\.FS`
		return err
	}
	return nil
}

func mediated(fsys FS, dir string) error {
	f, err := fsys.Create(dir + "/part")
	if err != nil {
		return err
	}
	f.Close()
	return fsys.Rename(dir+"/part", dir+"/final")
}

func allowed(dir string) error {
	//lint:allow fsdiscipline fixture: startup-only probe before the FS exists, crash-safety tests cover it separately
	_, err := os.Stat(dir)
	return err
}

func allowMissingReason(dir string) error {
	//lint:allow fsdiscipline // want `missing its mandatory reason`
	return os.Remove(dir) // want `direct os\.Remove bypasses faultfs\.FS`
}
