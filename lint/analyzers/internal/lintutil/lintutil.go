// Package lintutil holds the few type-resolution helpers the
// datasynthlint analyzers share.
package lintutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (conversions,
// builtins, function-typed variables).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// FromPkg reports whether f is declared in the package with the given
// import path.
func FromPkg(f *types.Func, pkgPath string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath
}

// IsFunc reports whether f is the function pkgPath.name.
func IsFunc(f *types.Func, pkgPath, name string) bool {
	return FromPkg(f, pkgPath) && f.Name() == name
}
