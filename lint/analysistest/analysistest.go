// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments — the same contract
// as golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// stdlib because the build environment is offline.
//
// Fixtures live in testdata/src/<importpath>/*.go. A line that should
// produce a finding carries a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// where each quoted (or backquoted) pattern must match one diagnostic
// reported on that line. Diagnostics without a matching want, and
// wants without a matching diagnostic, fail the test. //lint:allow
// directives are applied exactly as the datasynthlint driver applies
// them, so fixtures exercise suppression and the mandatory-reason rule
// end to end.
package analysistest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"datasynth/lint/analysis"
	"datasynth/lint/internal/load"
)

// TestData returns the caller's testdata/src directory, the fixture
// root expected by Run.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller for testdata")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "src")
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRe matches one quoted or backquoted pattern.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package from srcRoot, applies the analyzer
// plus //lint:allow filtering, and reports mismatches against the
// fixtures' // want comments through t.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		runOne(t, srcRoot, a, path)
	}
}

func runOne(t *testing.T, srcRoot string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	pkg, err := load.LoadFixture(srcRoot, importPath)
	if err != nil {
		t.Errorf("%s: %v", importPath, err)
		return
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer %s: %v", importPath, a.Name, err)
		return
	}
	diags = analysis.Filter(pkg.Fset, pkg.Files, a.Name, diags)

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				specs := wantRe.FindAllStringSubmatch(text[i+len("// want "):], -1)
				if len(specs) == 0 {
					t.Errorf("%s:%d: malformed // want comment", pos.Filename, pos.Line)
					continue
				}
				for _, m := range specs {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, rel(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic at %s:%d matching %q, got none", a.Name, rel(w.file), w.line, w.re)
		}
	}
}

// rel shortens an absolute fixture path for readable failures.
func rel(path string) string {
	if i := strings.Index(path, "testdata"); i >= 0 {
		return path[i:]
	}
	return path
}
