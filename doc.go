// Package datasynth is a from-scratch Go reproduction of "Towards a
// property graph generator for benchmarking" (Prat-Pérez et al., 2017,
// arXiv:1704.00630): a framework for generating property graphs with
// configurable schemas, property value distributions, pluggable graph
// structure generators, and — the paper's core contribution —
// property-structure correlations preserved by the SBM-Part streaming
// matching algorithm.
//
// The library lives under internal/ (see README.md for the map);
// cmd/datasynth generates datasets from DSL schemas and
// cmd/sbmpart-eval regenerates the paper's evaluation. The benchmarks
// in bench_test.go cover every table and figure of the paper; run them
// with
//
//	go test -bench=. -benchmem .
package datasynth
