// Package datasynth is a from-scratch Go reproduction of "Towards a
// property graph generator for benchmarking" (Prat-Pérez et al., 2017,
// arXiv:1704.00630): a framework for generating property graphs with
// configurable schemas, property value distributions, pluggable graph
// structure generators, and — the paper's core contribution —
// property-structure correlations preserved by the SBM-Part streaming
// matching algorithm.
//
// # Execution model
//
// The engine (internal/core) executes a schema as a task DAG. The
// dependency analysis (internal/depgraph) turns the schema into tasks
// of four kinds — generate node property, generate structure, match
// properties to structure, generate edge property — and exposes the
// per-task dependency edges (Plan.Deps), not just a topological order.
// A bounded worker pool dispatches every task the moment its
// dependencies are satisfied, so independent schema elements generate
// concurrently — the in-process analogue of the paper's shared-nothing
// cluster. Determinism is independent of the worker count: every task
// keys its RNG streams off (schema seed, task id), so a fixed seed
// yields a byte-identical dataset at Workers = 1 and Workers = NumCPU.
// Within a property task, rows additionally fan out to workers, since
// every value is a pure function of (id, r(id), deps).
//
// The hot inner loops are allocation-free at steady state: SBM-Part
// reuses per-partitioner scoring scratch, the LFR configuration model
// deduplicates edges by sort-and-compact over packed keys (plus a
// stamp table for the small intra-community universes) instead of a
// per-edge hash map, and CSR graph construction goes through a pooled
// reusable builder (internal/graph.Builder).
//
// # Intra-task parallelism and the determinism contract
//
// Beyond task-level scheduling, the two largest tasks shard
// internally, under one invariant: the dataset is a pure function of
// the schema seed — byte-identical at every worker count and window
// size, verified end to end by hashing exported CSV/JSONL files
// (internal/core TestExportedDatasetGoldenDeterminism).
//
//   - Windowed SBM-Part (internal/match): the node stream is processed
//     in fixed-size windows. A parallel scan phase classifies every
//     window node's neighbourhood against a frozen snapshot of the
//     partial assignment; a sequential commit phase patches in the
//     neighbours placed earlier in the same window — reconstructing
//     exactly the counts, in exactly the floating-point summation
//     order, the serial stream would see — and places nodes in stream
//     order. Knobs: SBMPart.Window / Options.Window (0 = auto,
//     <= 1 = serial) and Workers; cmd flags -window / -workers.
//   - Windowed re-streaming refinement (internal/match): the
//     multi-pass matcher (restreamed-LDG refinement, the schema's
//     `passes` knob) applies the same scan/commit split to every
//     refinement pass. Scans classify each neighbour under the frozen
//     *hybrid* assignment — new group if already re-placed, previous-
//     pass group if it cannot move within the window — and only
//     same-window neighbours stay pending for the commit to patch.
//     The per-pass quota ledger and the isolated-node fallback run
//     exclusively in the sequential commit, so the refined partition
//     is a pure function of the seed: byte-identical at every
//     refinement window size and worker count, including the FP
//     summation order of the vacate/re-add joint-matrix updates.
//     Knobs: SBMPart.RefineWindow / Options.RefineWindow /
//     Engine.RefineWindow (0 = inherit the first-pass window,
//     negative = serial); cmd flag -refinewindow. Per-pass wall times
//     surface in the -timings report as match-task notes.
//   - Sharded LFR wiring (internal/sgen): once community sizes and
//     memberships are fixed, each community's internal configuration
//     model is an independent shard. Shard c draws from its own RNG
//     stream keyed off (seed, "lfr.intra", c) via xrand's DeriveN,
//     emits into a disjoint arena range, and the ranges concatenate in
//     community order — so any number of workers, finishing in any
//     order, produce the same edge table.
//
// Every Generate also records per-task wall times and derives the
// plan's critical path (Engine.Report, datasynth -timings): the
// dependency chain that bounds wall time at infinite workers, i.e.
// where further intra-task sharding pays off. After Engine.Export the
// report covers the whole generate→match→export pipeline: per-file
// export stats, end-to-end wall, and a final export hop on the
// critical path.
//
// # Evaluation fan-out and the export pipeline
//
// The two outermost layers parallelise under the same determinism
// contract — per-seed, worker-invariant, format-stable:
//
//   - Parallel panels (internal/exp): figure panels and sweep points
//     are independent (each owns its seed), so exp.RunPanels runs them
//     on a bounded pool and streams results back in submission order,
//     byte-identical to the serial loop at every worker count
//     (cmd/sbmpart-eval -panelworkers). The timing experiment stays
//     pinned to one serial, single-thread panel at a time.
//   - Concurrent atomic export (internal/table): Dataset.Export writes
//     one file per table on a bounded pool in any of three formats —
//     CSV via a pooled append encoder byte-identical to encoding/csv,
//     JSON-lines via a pooled append encoder byte-identical to
//     encoding/json's default configuration (keys sorted, HTML
//     escaping, stdlib float formatting — fuzz-verified against the
//     stdlib encoders, so the byte stream is stable across releases
//     of this package), and a binary columnar format (.dsc: typed
//     column blocks with CRC-32C trailers, round-tripped by
//     OpenColumnar, the bulk-load path at ~4x CSV throughput). A
//     property whose short name collides with a structural JSONL key
//     ("id", "label", "tail", "head") or with another property is a
//     hard export error — it used to silently overwrite the field.
//     Files stage as temp files and rename into place only after
//     every table succeeded, so a failed export never leaves a
//     partial directory. The exported bytes are hash-verified
//     identical across scheduler workers, match windows, refinement
//     windows and export workers (internal/core
//     TestExportedDatasetGoldenDeterminism and its refined variant).
//
// # Serving generation: datasynthd
//
// The determinism contract is what makes generation servable as
// infrastructure. internal/service + cmd/datasynthd expose the engine
// over HTTP behind a bounded job queue and a content-addressable
// dataset cache keyed on (schema-semantics version, canonical schema,
// export format) — the canonical schema being dsl.Print's rendering,
// hashed by core.CanonicalHash, so surface spelling never splits the
// key and the embedded seed always does. Because a dataset is a pure
// function of that key, a cache hit is provably byte-identical to
// regeneration (pinned by TestServiceEndToEndByteIdentical against a
// fresh direct export), and concurrent identical submissions collapse
// onto one generation via singleflight — the job id is the cache key.
// Cache entries commit two-phase (staged export + manifest, then a
// directory rename) and carry per-file SHA-256s; a corrupted entry is
// evicted at lookup and regenerated, never served. Per-job resource
// limits (max nodes/edges, queue bound, generation timeout via
// Engine.GenerateCtx's task-granular cancellation) and graceful
// SIGTERM drain make it safe to park in front of real traffic; see
// docs/service.md.
//
// The library lives under internal/ (see README.md for the map);
// cmd/datasynth generates datasets from DSL schemas (-format
// csv|jsonl|columnar, -exportworkers; -validate prints the canonical
// schema hash without generating), cmd/datasynthd serves generation
// over HTTP, cmd/sbmpart-eval regenerates
// the paper's evaluation and cmd/graphstats validates exported
// datasets in either connector format. The benchmarks in bench_test.go
// cover every table and figure of the paper, and export_bench_test.go
// tracks connector throughput; run them with
//
//	go test -bench=. -benchmem .
//
// or ./bench.sh to record a machine-readable snapshot.
package datasynth
