package datasynth

// Export-throughput benchmarks on the Figure3_LFR100k dataset: the
// panel's 100k nodes / ~1M edges materialised as a property graph
// (int + string + float node columns plus the edge table) and written
// in every connector format. These are the numbers behind the PR-over-
// PR export trajectory in BENCH_pr<N>.json:
//
//   - CSVSerial is the old one-table-at-a-time baseline shape
//     (Workers=1) on the new append encoder;
//   - CSV/JSONL/Columnar run the concurrent exporter (Workers=NumCPU);
//   - Columnar is the binary bulk-load format — no text formatting at
//     all, so it bounds what the disk path can do.
//
// Bytes/op (from b.SetBytes) measures emitted file bytes per second;
// formats differ in how many bytes they emit for the same dataset, so
// compare ns/op for end-to-end wall time and MB/s within a format.

import (
	"sync"
	"testing"

	"datasynth/internal/exp"
	"datasynth/internal/table"
)

var exportBench struct {
	once sync.Once
	d    *table.Dataset
	err  error
}

// exportBenchDataset builds the Figure3_LFR100k dataset once per
// benchmark process.
func exportBenchDataset(b *testing.B) *table.Dataset {
	exportBench.once.Do(func() {
		r, err := exp.RunPanel(exp.Panel{Generator: exp.LFR, Size: 100000, K: 16, Seed: 33})
		if err != nil {
			exportBench.err = err
			return
		}
		exportBench.d, exportBench.err = r.Dataset()
	})
	if exportBench.err != nil {
		b.Fatal(exportBench.err)
	}
	return exportBench.d
}

func benchExport(b *testing.B, format table.Format, workers int) {
	b.Helper()
	d := exportBenchDataset(b)
	dir := b.TempDir() // reused: rename-over replaces the files in place
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		files, err := d.Export(dir, table.ExportOptions{Format: format, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, f := range files {
			total += f.Bytes
		}
	}
	b.SetBytes(total)
	b.ReportMetric(float64(total)/(1<<20), "MB")
}

func BenchmarkExportCSVSerial_LFR100k(b *testing.B) {
	benchExport(b, table.FormatCSV, 1)
}

func BenchmarkExportCSV_LFR100k(b *testing.B) {
	benchExport(b, table.FormatCSV, 0)
}

func BenchmarkExportJSONL_LFR100k(b *testing.B) {
	benchExport(b, table.FormatJSONL, 0)
}

func BenchmarkExportColumnar_LFR100k(b *testing.B) {
	benchExport(b, table.FormatColumnar, 0)
}

// BenchmarkOpenColumnar_LFR100k measures the read side of the bulk
// path: loading the whole columnar dataset back into memory.
func BenchmarkOpenColumnar_LFR100k(b *testing.B) {
	d := exportBenchDataset(b)
	dir := b.TempDir()
	files, err := d.Export(dir, table.ExportOptions{Format: table.FormatColumnar})
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, f := range files {
		total += f.Bytes
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.OpenColumnar(dir); err != nil {
			b.Fatal(err)
		}
	}
}
