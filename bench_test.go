package datasynth

// One benchmark per table/figure of the paper, plus the ablations
// DESIGN.md calls out. Fidelity metrics (L1, KS) are attached to the
// benchmark output via ReportMetric, so `go test -bench=.` regenerates
// both the performance and the quality side of every experiment at
// laptop scale. cmd/sbmpart-eval -full runs the paper's full sizes.

import (
	"fmt"
	"testing"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
	"datasynth/internal/exp"
	"datasynth/internal/graph"
	"datasynth/internal/match"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/xrand"
)

// benchPanel runs one evaluation panel per iteration and reports its
// fidelity metrics.
func benchPanel(b *testing.B, p exp.Panel) {
	b.Helper()
	var last *exp.Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunPanel(p)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.L1, "L1")
	b.ReportMetric(last.KS, "KS")
	b.ReportMetric(float64(last.Edges), "edges")
}

// --- Figure 3: fixed k=16, varying graph size ---

func BenchmarkFigure3_LFR10k_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 10000, K: 16, Seed: 31})
}

func BenchmarkFigure3_LFR30k_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 30000, K: 16, Seed: 32})
}

func BenchmarkFigure3_LFR100k_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 100000, K: 16, Seed: 33})
}

func BenchmarkFigure3_RMAT12_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 12, K: 16, Seed: 34})
}

func BenchmarkFigure3_RMAT14_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 14, K: 16, Seed: 35})
}

func BenchmarkFigure3_RMAT16_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 16, K: 16, Seed: 36})
}

// --- Scale ceiling: the paper's full-size panels, run as benchmarks so
// regressions at depth (sharded RMAT generation, radix dedup, LFR
// community wiring) show up in wall-clock rather than only at laptop
// scale. RMAT scale 20 is 2^20 nodes; LFR 1M matches Figure 3's
// largest LFR panel.

func BenchmarkFigure3_RMAT20_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 20, K: 16, Seed: 37})
}

func BenchmarkFigure3_LFR1M_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 1000000, K: 16, Seed: 38})
}

// --- Figure 4: fixed size, k in {4, 16, 64} ---

func BenchmarkFigure4_LFR100k_K4(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 100000, K: 4, Seed: 41})
}

func BenchmarkFigure4_LFR100k_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 100000, K: 16, Seed: 42})
}

func BenchmarkFigure4_LFR100k_K64(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.LFR, Size: 100000, K: 64, Seed: 43})
}

func BenchmarkFigure4_RMAT16_K4(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 16, K: 4, Seed: 44})
}

func BenchmarkFigure4_RMAT16_K16(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 16, K: 16, Seed: 45})
}

func BenchmarkFigure4_RMAT16_K64(b *testing.B) {
	benchPanel(b, exp.Panel{Generator: exp.RMAT, Size: 16, K: 64, Seed: 46})
}

// --- Table 1: capability matrix, measured ---

func BenchmarkTable1Capabilities(b *testing.B) {
	var held, total int
	for i := 0; i < b.N; i++ {
		caps, err := exp.MeasureCapabilities(5000, 99)
		if err != nil {
			b.Fatal(err)
		}
		held, total = 0, len(caps)
		for _, c := range caps {
			if c.Holds {
				held++
			}
		}
	}
	b.ReportMetric(float64(held), "capabilities_held")
	b.ReportMetric(float64(total), "capabilities_total")
}

// --- Timing claim (Sec 4.2): SBM-Part wall time, k=64, RMAT ---

func BenchmarkTimingSBMPartRMAT14_K64(b *testing.B) {
	benchTiming(b, 14)
}

func BenchmarkTimingSBMPartRMAT16_K64(b *testing.B) {
	benchTiming(b, 16)
}

func benchTiming(b *testing.B, scale int64) {
	b.Helper()
	var eps float64
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunTiming([]int64{scale}, 64, 7)
		if err != nil {
			b.Fatal(err)
		}
		eps = float64(pts[0].Edges) / pts[0].Seconds
	}
	b.ReportMetric(eps, "edges/s")
}

// --- Ablations called out in DESIGN.md ---

// setupAblation builds one shared LFR instance with LDG ground truth.
func setupAblation(b *testing.B, n int64, k int) (*graph.Graph, *stats.Joint, []int64) {
	b.Helper()
	lfr := sgen.NewLFR(5)
	et, err := lfr.Run(n)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		b.Fatal(err)
	}
	sizes, err := xrand.GroupSizes(n, k, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	ldg, err := match.NewLDG(sizes)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := ldg.Partition(g, match.RandomOrder(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	target, err := stats.EmpiricalJoint(et, truth, k)
	if err != nil {
		b.Fatal(err)
	}
	// L1 needs the edge table; keep it in package state so the ablation
	// loops can recompute observed joints from assignments.
	ablationShared = ablationState{g: g, target: target, sizes: sizes, etTail: et.Tail, etHead: et.Head, n: n, k: k}
	return g, target, sizes
}

type ablationState struct {
	g              *graph.Graph
	target         *stats.Joint
	sizes          []int64
	etTail, etHead []int64
	n              int64
	k              int
}

var ablationShared ablationState

func ablationL1(b *testing.B, assign []int64) float64 {
	b.Helper()
	s := &ablationShared
	obs := stats.NewJoint(s.k)
	w := 1 / float64(len(s.etTail))
	for i := range s.etTail {
		obs.Add(int(assign[s.etTail[i]]), int(assign[s.etHead[i]]), w)
	}
	l1, err := stats.L1(s.target, obs)
	if err != nil {
		b.Fatal(err)
	}
	return l1
}

// BenchmarkAblationBalance compares SBM-Part with and without the LDG
// capacity-balancing factor.
func BenchmarkAblationBalance(b *testing.B) {
	for _, balance := range []bool{true, false} {
		b.Run(fmt.Sprintf("balance=%v", balance), func(b *testing.B) {
			g, target, sizes := setupAblation(b, 10000, 16)
			var l1 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				part, err := match.NewSBMPart(target, sizes)
				if err != nil {
					b.Fatal(err)
				}
				part.Balance = balance
				part.Seed = 3
				assign, err := part.Partition(g, match.RandomOrder(g.N(), 2))
				if err != nil {
					b.Fatal(err)
				}
				l1 = ablationL1(b, assign)
			}
			b.ReportMetric(l1, "L1")
		})
	}
}

// BenchmarkAblationOrder compares stream orders (random vs BFS vs
// degree-descending).
func BenchmarkAblationOrder(b *testing.B) {
	for _, order := range []string{"random", "bfs", "degree"} {
		b.Run(order, func(b *testing.B) {
			g, target, sizes := setupAblation(b, 10000, 16)
			var ord []int64
			switch order {
			case "random":
				ord = match.RandomOrder(g.N(), 2)
			case "bfs":
				ord = match.BFSOrder(g, 2)
			case "degree":
				ord = match.DegreeDescOrder(g)
			}
			var l1 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				part, err := match.NewSBMPart(target, sizes)
				if err != nil {
					b.Fatal(err)
				}
				part.Seed = 3
				assign, err := part.Partition(g, ord)
				if err != nil {
					b.Fatal(err)
				}
				l1 = ablationL1(b, assign)
			}
			b.ReportMetric(l1, "L1")
		})
	}
}

// BenchmarkAblationTarget compares the default proportional target
// scaling against the literal final-target reading of the paper (see
// DESIGN.md §6).
func BenchmarkAblationTarget(b *testing.B) {
	for _, final := range []bool{false, true} {
		name := "proportional"
		if final {
			name = "final"
		}
		b.Run(name, func(b *testing.B) {
			g, target, sizes := setupAblation(b, 10000, 16)
			var l1 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				part, err := match.NewSBMPart(target, sizes)
				if err != nil {
					b.Fatal(err)
				}
				part.Seed = 3
				part.FinalTarget = final
				assign, err := part.Partition(g, match.RandomOrder(g.N(), 2))
				if err != nil {
					b.Fatal(err)
				}
				l1 = ablationL1(b, assign)
			}
			b.ReportMetric(l1, "L1")
		})
	}
}

// --- Component throughput benchmarks ---

func BenchmarkStructureRMAT(b *testing.B) {
	n := int64(1 << 14)
	var edges int64
	for i := 0; i < b.N; i++ {
		et, err := sgen.NewRMAT(uint64(i)).Run(n)
		if err != nil {
			b.Fatal(err)
		}
		edges = et.Len()
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()*float64(b.N), "edges/s")
}

func BenchmarkStructureLFR(b *testing.B) {
	n := int64(20000)
	var edges int64
	for i := 0; i < b.N; i++ {
		et, err := sgen.NewLFR(uint64(i)).Run(n)
		if err != nil {
			b.Fatal(err)
		}
		edges = et.Len()
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()*float64(b.N), "edges/s")
}

func BenchmarkEngineSocialNetwork(b *testing.B) {
	const schemaText = `
graph social {
  seed = 42
  node Person {
    count = 5000
    property country : string = categorical(dict="countries")
    property sex     : string = categorical(values="M|F")
    property name    : string = dictionary() given (country, sex)
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
  node Message { property topic : string = categorical(dict="topics") }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=15, maxDegree=40)
    correlate country homophily 0.8
    property creationDate : date = max-endpoint-date() given (tail.creationDate, head.creationDate)
  }
  edge creates : Person 1-* Message { structure = powerlaw-out(min=1, max=10, gamma=2.0) }
}
`
	s, err := dsl.Parse(schemaText)
	if err != nil {
		b.Fatal(err)
	}
	var nodes, edges int64
	for i := 0; i < b.N; i++ {
		d, err := core.New(s).Generate()
		if err != nil {
			b.Fatal(err)
		}
		nodes, edges = 0, 0
		for _, c := range d.NodeCounts {
			nodes += c
		}
		for _, et := range d.Edges {
			edges += et.Len()
		}
	}
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(edges), "edges")
}

// BenchmarkInPlaceGeneration measures raw property-value throughput —
// the Myriad-style in-place generation path.
func BenchmarkInPlaceGeneration(b *testing.B) {
	s, err := dsl.Parse(`
graph g {
  seed = 9
  node N {
    count = 200000
    property x : int = uniform-int(lo=0, hi=1000000)
    property c : string = categorical(dict="countries")
  }
  edge e : N *-* N { count = 1000 structure = erdos-renyi(edgesPerNode=1) }
}
`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.New(s).Generate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(400000*float64(b.N)/b.Elapsed().Seconds(), "values/s")
}

// BenchmarkAblationRestream measures the re-streaming refinement
// extension (paper future work "optimization strategies"): extra
// hub-first passes over the stream with fresh quotas.
func BenchmarkAblationRestream(b *testing.B) {
	for _, passes := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			g, target, sizes := setupAblation(b, 10000, 16)
			order := match.RandomOrder(g.N(), 2)
			var l1 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				part, err := match.NewSBMPart(target, sizes)
				if err != nil {
					b.Fatal(err)
				}
				part.Seed = 3
				assign, err := part.PartitionMultiPass(g, order, passes)
				if err != nil {
					b.Fatal(err)
				}
				l1 = ablationL1(b, assign)
			}
			b.ReportMetric(l1, "L1")
		})
	}
}
