module datasynth

go 1.24
